package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// mutationBackend is a minimal in-memory /objects server implementing
// the same sequence-token contract as the real one: every accepted
// batch inserts its ops and records the statuses under the token;
// a replayed token returns the recording without applying.
type mutationBackend struct {
	applied atomic.Int64 // total ops actually applied
	nextKey atomic.Uint64
	seq     map[string][]byte // token → recorded response body
}

func newMutationBackend() *mutationBackend {
	b := &mutationBackend{seq: map[string][]byte{}}
	b.nextKey.Store(100)
	return b
}

func (b *mutationBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Seq string     `json:"seq"`
		Ops []ObjectOp `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Seq != "" {
		if rec, ok := b.seq[req.Seq]; ok {
			var resp ObjectsResponse
			json.Unmarshal(rec, &resp)
			resp.Replayed = true
			out, _ := json.Marshal(resp)
			w.Header().Set("Content-Type", "application/json")
			w.Write(out)
			return
		}
	}
	resp := ObjectsResponse{Gen: 1, Results: make([]ObjectResult, len(req.Ops))}
	for i := range req.Ops {
		b.applied.Add(1)
		resp.Results[i] = ObjectResult{Key: b.nextKey.Add(1) - 1}
	}
	out, _ := json.Marshal(resp)
	if req.Seq != "" {
		b.seq[req.Seq] = out
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// dropResponse wraps a handler: for the first n requests it runs the
// handler to completion (the work happens server-side) but discards the
// response and answers 502 — the proxy-lost-the-reply failure mode that
// makes naive mutation retries double-apply.
func dropResponse(n int, inner http.Handler) http.Handler {
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= int64(n) {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			http.Error(w, "upstream reset", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	})
}

func TestObjectsRetryAppliesAtMostOnce(t *testing.T) {
	for _, tc := range []struct {
		name  string
		drops int
	}{
		{"one 502", 1},
		{"two 502s", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			backend := newMutationBackend()
			srv := httptest.NewServer(dropResponse(tc.drops, backend))
			defer srv.Close()
			c := &Client{Base: srv.URL, sleep: func(context.Context, time.Duration) error { return nil }}
			resp, err := c.Objects(context.Background(), []ObjectOp{
				{Op: "insert", X: 1, Y: 2, Kw: []string{"cafe"}},
				{Op: "insert", X: 3, Y: 4, Kw: []string{"bar"}},
			})
			if err != nil {
				t.Fatal(err)
			}
			// The dropped attempts applied the batch; the winning retry must
			// have been a replay, not a second application.
			if got := backend.applied.Load(); got != 2 {
				t.Fatalf("backend applied %d ops, want 2 (at-most-once)", got)
			}
			if !resp.Replayed {
				t.Fatal("winning retry was not a replay")
			}
			if len(resp.Results) != 2 || resp.Results[0].Key != 100 || resp.Results[1].Key != 101 {
				t.Fatalf("replayed results = %+v", resp.Results)
			}
		})
	}
}

func TestObjectsFreshTokenPerCall(t *testing.T) {
	backend := newMutationBackend()
	srv := httptest.NewServer(backend)
	defer srv.Close()
	c := &Client{Base: srv.URL}
	ops := []ObjectOp{{Op: "insert", Kw: []string{"x"}}}
	r1, err := c.Objects(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Objects(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	// Two separate logical calls are two applications: the token is
	// per-call, not per-payload.
	if r1.Replayed || r2.Replayed {
		t.Fatalf("distinct calls replayed: %v %v", r1.Replayed, r2.Replayed)
	}
	if backend.applied.Load() != 2 {
		t.Fatalf("applied = %d, want 2", backend.applied.Load())
	}
	if r1.Results[0].Key == r2.Results[0].Key {
		t.Fatal("two applications returned the same key")
	}
}

func TestObjectsNonRetryableStatusFailsFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		io.Copy(io.Discard, r.Body)
		http.Error(w, `{"error":"bad batch"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, sleep: func(context.Context, time.Duration) error { return nil }}
	_, err := c.Objects(context.Background(), []ObjectOp{{Op: "insert"}})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

func TestObjectsRetriesBodyIntact(t *testing.T) {
	// Each attempt must carry the full body — a consumed reader would
	// send an empty body on retry.
	var bodies [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		bodies = append(bodies, raw)
		if len(bodies) < 3 {
			http.Error(w, "try again", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"gen":1,"results":[{"key":7}]}`))
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, sleep: func(context.Context, time.Duration) error { return nil }}
	resp, err := c.Objects(context.Background(), []ObjectOp{{Op: "insert", Kw: []string{"kw"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Key != 7 {
		t.Fatalf("resp = %+v", resp)
	}
	if len(bodies) != 3 {
		t.Fatalf("attempts = %d, want 3", len(bodies))
	}
	for i := 1; i < len(bodies); i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("attempt %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if len(bodies[0]) == 0 {
		t.Fatal("empty request body")
	}
	// All attempts share one sequence token (byte-identical bodies imply
	// it, but assert explicitly for the contract's sake).
	var sent struct {
		Seq string `json:"seq"`
	}
	if err := json.Unmarshal(bodies[0], &sent); err != nil || sent.Seq == "" {
		t.Fatalf("no seq token in body: %s", bodies[0])
	}
}

func TestObjectsContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{Base: srv.URL}
	if _, err := c.Objects(ctx, []ObjectOp{{Op: "insert"}}); err == nil {
		t.Fatal("cancelled context did not fail")
	}
}
