package client

import (
	"context"
	"encoding/json"
	"net/url"
	"strconv"
	"strings"
)

// Shard data-plane calls: the read-only endpoints a scatter-gather
// coordinator fans out to on peer shard servers (internal/server
// mounts them on every server). They share the query endpoints' retry
// and backoff behaviour, so a shard shedding load (429 + Retry-After)
// is retried politely rather than reported as failed immediately.

// ShardMetaResponse mirrors the server's /shard/meta body.
type ShardMetaResponse struct {
	Name    string  `json:"name"`
	Objects int     `json:"objects"`
	MinX    float64 `json:"minX"`
	MinY    float64 `json:"minY"`
	MaxX    float64 `json:"maxX"`
	MaxY    float64 `json:"maxY"`
	Empty   bool    `json:"empty"`
	// Summary is the hex-encoded keyword bitset (shard.Summary wire form).
	Summary string `json:"summary"`
	// Gen is the shard's index generation (0 for static datasets).
	Gen uint64 `json:"gen"`
}

// ShardNNHit mirrors one entry of the server's /shard/nn body: the
// shard's nearest object containing the corresponding query keyword.
type ShardNNHit struct {
	Found    bool     `json:"found"`
	ID       uint32   `json:"id"`
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Dist     float64  `json:"dist"`
	Keywords []string `json:"keywords"`
}

// ShardNNResponse mirrors the server's /shard/nn body. Trace is the
// shard's trace fragment, present only when the request carried a
// traceparent header; it stays raw here — the fragment is untrusted
// remote input that trace.DecodeFragment validates under hard limits
// before anything is stitched.
type ShardNNResponse struct {
	Gen   uint64          `json:"gen"`
	Hits  []ShardNNHit    `json:"hits"`
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ShardObject mirrors one entry of the server's /shard/collect body.
type ShardObject struct {
	ID       uint32   `json:"id"`
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords"`
}

// ShardCollectResponse mirrors the server's /shard/collect body; Trace
// is the optional fragment, as on ShardNNResponse.
type ShardCollectResponse struct {
	Gen     uint64          `json:"gen"`
	Objects []ShardObject   `json:"objects"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

func shardValues(x, y float64, kws []string) url.Values {
	v := url.Values{}
	v.Set("x", strconv.FormatFloat(x, 'g', -1, 64))
	v.Set("y", strconv.FormatFloat(y, 'g', -1, 64))
	v.Set("kw", strings.Join(kws, ","))
	return v
}

// ShardMeta fetches the shard's routing summary.
func (c *Client) ShardMeta(ctx context.Context) (*ShardMetaResponse, error) {
	var out ShardMetaResponse
	if err := c.getJSON(ctx, "/shard/meta", url.Values{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardNN fetches the shard's nearest object per query keyword; the
// response carries one hit slot per keyword, in order. Keywords unknown
// to the shard come back with Found=false, never as an error.
func (c *Client) ShardNN(ctx context.Context, x, y float64, kws []string) (*ShardNNResponse, error) {
	var out ShardNNResponse
	if err := c.getJSON(ctx, "/shard/nn", shardValues(x, y, kws), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardCollect fetches every shard object within radius r of (x, y)
// sharing at least one keyword with kws.
func (c *Client) ShardCollect(ctx context.Context, x, y, r float64, kws []string) (*ShardCollectResponse, error) {
	v := shardValues(x, y, kws)
	v.Set("r", strconv.FormatFloat(r, 'g', -1, 64))
	var out ShardCollectResponse
	if err := c.getJSON(ctx, "/shard/collect", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
