package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfter pins the RFC 9110 §10.2.3 corners: delta-seconds
// (including negative, overflowing, and absurdly large values) and
// HTTP-dates in all three formats http.ParseTime accepts.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
		ok   bool
	}{
		{"absent", "", 0, false},
		{"plain seconds", "3", 3 * time.Second, true},
		{"zero seconds", "0", 0, true},
		{"cap boundary", "300", MaxRetryAfter, true},
		{"above cap", "301", MaxRetryAfter, true},
		{"huge but parseable", "86400000", MaxRetryAfter, true},
		{"overflows int64", "99999999999999999999999999", MaxRetryAfter, true},
		{"negative", "-5", 0, false},
		{"negative overflow", "-99999999999999999999999999", 0, false},
		{"fractional rejected", "2.5", 0, false},
		{"trailing junk", "3s", 0, false},
		{"garbage", "soon", 0, false},
		{"imf-fixdate future", now.Add(42 * time.Second).UTC().Format(http.TimeFormat), 42 * time.Second, true},
		{"imf-fixdate far future", now.Add(48 * time.Hour).UTC().Format(http.TimeFormat), MaxRetryAfter, true},
		{"imf-fixdate past", now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0, false},
		{"imf-fixdate now", now.UTC().Format(http.TimeFormat), 0, false},
		{"rfc850 future", now.Add(30 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second, true},
		{"asctime future", now.Add(30 * time.Second).UTC().Format(time.ANSIC), 30 * time.Second, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.h, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.h, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestHonorsRetryAfterDate: a 429 carrying an HTTP-date hint makes the
// client wait approximately until that instant, not the computed
// backoff. (Approximate because the client anchors on its own clock; a
// 30s hint must not collapse to the ~50ms default backoff.)
func TestHonorsRetryAfterDate(t *testing.T) {
	when := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	s := &scriptedServer{t: t, replies: []func(http.ResponseWriter){
		shed(when),
		ok(QueryResponse{Cost: 5}),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()
	var waits []time.Duration
	c := instantClient(srv, &waits)
	res, err := c.Query(context.Background(), QueryParams{Keywords: []string{"cafe"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 5 {
		t.Fatalf("cost = %v, want 5", res.Cost)
	}
	if len(waits) != 1 || waits[0] < 25*time.Second || waits[0] > 30*time.Second {
		t.Fatalf("waits = %v, want one wait near the 30s date hint", waits)
	}
}

// TestPastDateFallsBackToBackoff: a stale HTTP-date hint is discarded
// and the normal jittered backoff takes over.
func TestPastDateFallsBackToBackoff(t *testing.T) {
	when := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	s := &scriptedServer{t: t, replies: []func(http.ResponseWriter){
		shed(when),
		ok(QueryResponse{}),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()
	var waits []time.Duration
	c := instantClient(srv, &waits)
	if _, err := c.Query(context.Background(), QueryParams{Keywords: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] > DefaultBaseBackoff {
		t.Fatalf("waits = %v, want one computed backoff ≤ %v", waits, DefaultBaseBackoff)
	}
}

// TestNegativeSecondsFallsBackToBackoff: "-1" must not be treated as a
// zero-length (or worse, huge unsigned) hint.
func TestNegativeSecondsFallsBackToBackoff(t *testing.T) {
	s := &scriptedServer{t: t, replies: []func(http.ResponseWriter){
		shed("-1"),
		ok(QueryResponse{}),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()
	var waits []time.Duration
	c := instantClient(srv, &waits)
	if _, err := c.Query(context.Background(), QueryParams{Keywords: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] <= 0 || waits[0] > DefaultBaseBackoff {
		t.Fatalf("waits = %v, want one positive computed backoff", waits)
	}
}
