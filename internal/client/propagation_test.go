package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"coskq/internal/trace"
)

// TestClientInjectsObservabilityHeaders: every outbound call forwards
// the context's request id and span context as X-Request-Id and
// Traceparent headers; with neither in the context, neither header is
// sent.
func TestClientInjectsObservabilityHeaders(t *testing.T) {
	var gotID, gotTP string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotID = r.Header.Get("X-Request-Id")
		gotTP = r.Header.Get("Traceparent")
		w.Write([]byte(`{"hits":[]}`))
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: -1}

	// Bare context: no observability headers invented.
	if _, err := c.ShardNN(context.Background(), 0, 0, []string{"cafe"}); err != nil {
		t.Fatal(err)
	}
	if gotID != "" || gotTP != "" {
		t.Fatalf("bare context sent headers: id=%q tp=%q", gotID, gotTP)
	}

	sc := trace.NewSpanContext()
	ctx := trace.ContextWithRequestID(context.Background(), "req-42")
	ctx = trace.ContextWithSpanContext(ctx, sc)
	if _, err := c.ShardNN(ctx, 0, 0, []string{"cafe"}); err != nil {
		t.Fatal(err)
	}
	if gotID != "req-42" {
		t.Fatalf("X-Request-Id = %q, want req-42", gotID)
	}
	if gotTP != sc.Traceparent() {
		t.Fatalf("Traceparent = %q, want %q", gotTP, sc.Traceparent())
	}
}

// TestClientMetricsText: the federation leg fetches /metrics verbatim
// and caps a hostile peer's page at MaxMetricsPage bytes.
func TestClientMetricsText(t *testing.T) {
	page := "# TYPE a counter\na 1\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(page))
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxRetries: -1}
	got, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != page {
		t.Fatalf("MetricsText = %q, want %q", got, page)
	}

	page = strings.Repeat("x", MaxMetricsPage+1024)
	if _, err = c.MetricsText(context.Background()); err == nil {
		t.Fatal("oversized peer page accepted; want a bounded-read error")
	}
}
