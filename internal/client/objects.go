package client

// Mutation surface: POST /objects with idempotency-safe retries. The
// retry loop is the same overload-aware policy as the query endpoints,
// but a retried mutation is not naturally safe — the first attempt may
// have been applied and only its response lost (a 502 from a proxy, a
// cut connection after commit). Objects therefore stamps each logical
// batch with one client-generated sequence token before the retry loop
// starts; every attempt carries the same token, and the server's
// sequence cache replays the recorded per-item statuses instead of
// re-applying the batch. At-most-once application, exactly-once
// observed outcome.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"
)

// ObjectOp is one mutation in a POST /objects batch. Op is "insert",
// "delete" or "edit". Key is optional on inserts (nil means the server
// assigns one) and required on deletes and edits.
type ObjectOp struct {
	Op  string   `json:"op"`
	Key *uint64  `json:"key,omitempty"`
	X   float64  `json:"x"`
	Y   float64  `json:"y"`
	Kw  []string `json:"kw,omitempty"`
}

// KeyOf is a convenience for building ops that address an existing key.
func KeyOf(k uint64) *uint64 { return &k }

// ObjectResult is the per-op outcome: Key echoes the (possibly
// server-assigned) object key, Error is empty for accepted ops.
type ObjectResult struct {
	Key   uint64 `json:"key"`
	Error string `json:"error,omitempty"`
}

// ObjectsResponse mirrors the server's POST /objects body. Replayed
// reports that the server recognized the batch's sequence token and
// returned the recorded outcome instead of applying again — the signal
// that an earlier attempt's response was lost, not the work.
type ObjectsResponse struct {
	Gen      uint64         `json:"gen"`
	Replayed bool           `json:"replayed,omitempty"`
	Results  []ObjectResult `json:"results"`
}

// newSeqToken returns a fresh random idempotency token.
func newSeqToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable in practice; an empty
		// token degrades to non-idempotent retries rather than panicking.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// Objects applies one batch of mutations, retrying transient failures
// under one idempotency token so the batch applies at most once even
// when a response is lost mid-retry.
func (c *Client) Objects(ctx context.Context, ops []ObjectOp) (*ObjectsResponse, error) {
	body, err := json.Marshal(struct {
		Seq string     `json:"seq"`
		Ops []ObjectOp `json:"ops"`
	}{Seq: newSeqToken(), Ops: ops})
	if err != nil {
		return nil, err
	}
	var out ObjectsResponse
	if err := c.postJSON(ctx, "/objects", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// postJSON runs the retry loop for one logical POST. The marshaled
// body is replayed verbatim on every attempt (a fresh bytes.Reader per
// attempt — http.Client consumes the body), so all attempts are
// byte-identical, sequence token included.
func (c *Client) postJSON(ctx context.Context, path string, body []byte, out any) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = defaultHTTPClient
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	} else if retries < 0 {
		retries = 0
	}
	u := strings.TrimSuffix(c.Base, "/") + path

	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		injectContextHeaders(ctx, req)
		resp, err := httpc.Do(req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
		case resp.StatusCode == http.StatusOK:
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			return err
		default:
			apiErr := &APIError{Status: resp.StatusCode, Attempts: attempt + 1}
			var envelope struct {
				Error string `json:"error"`
			}
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope) == nil {
				apiErr.Message = envelope.Error
			}
			if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				apiErr.RetryAfter = ra
			}
			resp.Body.Close()
			if !retryableStatus(resp.StatusCode) {
				return apiErr
			}
			lastErr = apiErr
		}
		if attempt >= retries {
			return lastErr
		}
		if err := c.wait(ctx, c.backoff(attempt, lastErr)); err != nil {
			return err
		}
	}
}
