// Package netcoskq extends CoSKQ to road networks — the paper's stated
// future work ("extend CoSKQ with the cost functions to other distance
// metrics such as road networks"). Objects sit on graph nodes and all
// distances are shortest-path distances.
//
// The distance owner-driven search carries over: every feasible set still
// has a query distance owner and pairwise distance owners, and the ring /
// incumbent prunings only use the metric axioms. What does NOT carry over
// are the Euclidean ratio constants: the approximation algorithm's planar
// lens analysis (1.375 / √3) degrades to the generic metric bound of 2 for
// both MaxSum and Dia, proved by the triangle inequality alone:
// every greedy member lies within maxPair(S*) of the optimal owner, so
// maxPair(S) ≤ 2·maxPair(S*) and cost(S) ≤ 2·cost(S*).
//
// Shortest-path distances are computed on demand (one Dijkstra per
// distinct source node) and cached for the engine's lifetime.
package netcoskq

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"coskq/internal/core"
	"coskq/internal/kwds"
	"coskq/internal/roadnet"
)

// Object is a geo-textual object attached to a road-network node.
type Object struct {
	Node     roadnet.NodeID
	Keywords kwds.Set
}

// Query is a CoSKQ issued from a network node.
type Query struct {
	Node     roadnet.NodeID
	Keywords kwds.Set
}

// Result is the answer to one network CoSKQ: indices into the engine's
// object slice, ascending.
type Result struct {
	Objects []int
	Cost    float64
	Elapsed time.Duration
}

// ErrInfeasible mirrors core.ErrInfeasible for the network setting: some
// query keyword appears on no reachable object.
var ErrInfeasible = errors.New("netcoskq: query keywords cannot be covered by reachable objects")

// Engine answers CoSKQ over one road network. Not safe for concurrent use
// (the distance cache is unsynchronized).
type Engine struct {
	G         *roadnet.Graph
	Objects   []Object
	postings  map[kwds.ID][]int
	distCache map[roadnet.NodeID][]float64
}

// NewEngine builds an engine over g and objects. Object nodes must be
// valid graph nodes.
func NewEngine(g *roadnet.Graph, objects []Object) (*Engine, error) {
	e := &Engine{
		G:         g,
		Objects:   objects,
		postings:  make(map[kwds.ID][]int),
		distCache: make(map[roadnet.NodeID][]float64),
	}
	for i, o := range objects {
		if int(o.Node) >= g.NumNodes() {
			return nil, fmt.Errorf("netcoskq: object %d on node %d, graph has %d nodes", i, o.Node, g.NumNodes())
		}
		for _, kw := range o.Keywords {
			e.postings[kw] = append(e.postings[kw], i)
		}
	}
	return e, nil
}

// dist returns (and caches) the SSSP distance array from node src.
func (e *Engine) dist(src roadnet.NodeID) []float64 {
	if d, ok := e.distCache[src]; ok {
		return d
	}
	d := e.G.ShortestFrom(src)
	e.distCache[src] = d
	return d
}

// ClearCache drops the shortest-path cache (it grows with one array of
// NumNodes float64 per distinct source queried).
func (e *Engine) ClearCache() {
	e.distCache = make(map[roadnet.NodeID][]float64)
}

// pairDist is the network distance between two objects.
func (e *Engine) pairDist(a, b int) float64 {
	return e.dist(e.Objects[a].Node)[e.Objects[b].Node]
}

// EvalCost computes the network cost of an object-index set under MaxSum
// or Dia. Panics on an empty set or other cost kinds.
func (e *Engine) EvalCost(cost core.CostKind, q Query, objs []int) float64 {
	if len(objs) == 0 {
		panic("netcoskq: EvalCost on empty set")
	}
	if cost != core.MaxSum && cost != core.Dia {
		panic(fmt.Sprintf("netcoskq: unsupported cost %v", cost))
	}
	dq := e.dist(q.Node)
	maxD, maxPair := 0.0, 0.0
	for i, a := range objs {
		if d := dq[e.Objects[a].Node]; d > maxD {
			maxD = d
		}
		for _, b := range objs[i+1:] {
			if d := e.pairDist(a, b); d > maxPair {
				maxPair = d
			}
		}
	}
	if cost == core.Dia {
		return math.Max(maxD, maxPair)
	}
	return maxD + maxPair
}

func combine(cost core.CostKind, ownerDist, maxPair float64) float64 {
	if cost == core.Dia {
		return math.Max(ownerDist, maxPair)
	}
	return ownerDist + maxPair
}

// relCand is one relevant object with its query distance and coverage.
type relCand struct {
	idx  int
	d    float64
	mask kwds.Mask
}

// relevant returns the relevant reachable objects sorted ascending by
// network distance from the query, plus d_f (the max over query keywords
// of the nearest covering object's distance). err is ErrInfeasible when
// some keyword is not coverable.
func (e *Engine) relevant(q Query, qi *kwds.QueryIndex) ([]relCand, float64, error) {
	dq := e.dist(q.Node)
	seen := map[int]bool{}
	var out []relCand
	df := 0.0
	for _, kw := range qi.Keywords() {
		best := math.Inf(1)
		for _, idx := range e.postings[kw] {
			d := dq[e.Objects[idx].Node]
			if math.IsInf(d, 1) {
				continue
			}
			if d < best {
				best = d
			}
			if !seen[idx] {
				seen[idx] = true
				out = append(out, relCand{idx: idx, d: d, mask: qi.MaskOf(e.Objects[idx].Keywords)})
			}
		}
		if math.IsInf(best, 1) {
			return nil, 0, ErrInfeasible
		}
		if best > df {
			df = best
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].idx < out[j].idx
	})
	return out, df, nil
}

// nnSeed builds N(q): per keyword, the nearest covering object.
func (e *Engine) nnSeed(q Query, qi *kwds.QueryIndex) []int {
	dq := e.dist(q.Node)
	set := map[int]bool{}
	for _, kw := range qi.Keywords() {
		best, bestD := -1, math.Inf(1)
		for _, idx := range e.postings[kw] {
			if d := dq[e.Objects[idx].Node]; d < bestD {
				best, bestD = idx, d
			}
		}
		if best >= 0 {
			set[best] = true
		}
	}
	out := make([]int, 0, len(set))
	for idx := range set {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Exact answers q optimally under MaxSum or Dia with the owner-driven
// search over network distances.
func (e *Engine) Exact(q Query, cost core.CostKind) (Result, error) {
	start := time.Now()
	qi := kwds.NewQueryIndex(q.Keywords)
	rel, df, err := e.relevant(q, qi)
	if err != nil {
		return Result{}, err
	}
	curSet := e.nnSeed(q, qi)
	curCost := e.EvalCost(cost, q, curSet)

	for ownerPos, owner := range rel {
		if owner.d >= curCost {
			break // cost ≥ d(owner, q)
		}
		if owner.d < df {
			continue
		}
		set, c := e.bestWithOwner(qi, cost, rel[:ownerPos+1], ownerPos, curCost)
		if set != nil && c < curCost {
			curSet, curCost = set, c
		}
	}
	sort.Ints(curSet)
	return Result{Objects: curSet, Cost: curCost, Elapsed: time.Since(start)}, nil
}

// bestWithOwner finds the cheapest feasible set owned by pool[ownerIdx]
// (its members drawn from pool, all at query distance ≤ the owner's).
func (e *Engine) bestWithOwner(qi *kwds.QueryIndex, cost core.CostKind, pool []relCand, ownerIdx int, bound float64) ([]int, float64) {
	owner := pool[ownerIdx]
	if combine(cost, owner.d, 0) >= bound {
		return nil, 0
	}
	if qi.Full()&^owner.mask == 0 {
		return []int{owner.idx}, combine(cost, owner.d, 0)
	}

	var (
		bestSet  []int
		bestCost = bound
		chosen   []int
	)
	var dfs func(covered kwds.Mask, maxPair float64)
	dfs = func(covered kwds.Mask, maxPair float64) {
		if covered == qi.Full() {
			if c := combine(cost, owner.d, maxPair); c < bestCost {
				bestCost = c
				bestSet = append([]int{owner.idx}, chosen...)
			}
			return
		}
		// Branch on the lowest uncovered bit (pools are small in the
		// network setting; candidate-count ordering buys little here).
		var branch kwds.Mask
		for b := 0; b < qi.Size(); b++ {
			if covered&(1<<uint(b)) == 0 {
				branch = 1 << uint(b)
				break
			}
		}
		for _, c := range pool {
			if c.mask&branch == 0 || c.mask&^covered == 0 {
				continue
			}
			np := maxPair
			if d := e.pairDist(c.idx, owner.idx); d > np {
				np = d
			}
			for _, pi := range chosen {
				if d := e.pairDist(c.idx, pi); d > np {
					np = d
				}
			}
			if combine(cost, owner.d, np) >= bestCost {
				continue
			}
			chosen = append(chosen, c.idx)
			dfs(covered|c.mask, np)
			chosen = chosen[:len(chosen)-1]
		}
	}
	dfs(owner.mask, 0)
	return bestSet, bestCost
}

// Appro answers q approximately: for each candidate owner (ascending
// network distance, in the ring [d_f, bestCost)), cover each missing
// keyword with the owner's nearest covering object inside the owner's
// disk. Ratio 2 for both MaxSum and Dia in any metric space.
func (e *Engine) Appro(q Query, cost core.CostKind) (Result, error) {
	start := time.Now()
	qi := kwds.NewQueryIndex(q.Keywords)
	rel, df, err := e.relevant(q, qi)
	if err != nil {
		return Result{}, err
	}
	curSet := e.nnSeed(q, qi)
	curCost := e.EvalCost(cost, q, curSet)

	for ownerPos, owner := range rel {
		if owner.d >= curCost {
			break
		}
		if owner.d < df {
			continue
		}
		need := qi.Full() &^ owner.mask
		set := []int{owner.idx}
		if need != 0 {
			do := e.dist(e.Objects[owner.idx].Node)
			feasible := true
			maxToOwner := 0.0
			for b := 0; b < qi.Size(); b++ {
				if need&(1<<uint(b)) == 0 {
					continue
				}
				bestIdx, bestD := -1, math.Inf(1)
				for _, c := range rel[:ownerPos+1] { // the owner's disk
					if c.mask&(1<<uint(b)) == 0 {
						continue
					}
					if d := do[e.Objects[c.idx].Node]; d < bestD {
						bestIdx, bestD = c.idx, d
					}
				}
				if bestIdx < 0 {
					feasible = false
					break
				}
				set = append(set, bestIdx)
				if bestD > maxToOwner {
					maxToOwner = bestD
				}
			}
			if !feasible || combine(cost, owner.d, maxToOwner) >= curCost {
				continue
			}
		}
		if c := e.EvalCost(cost, q, set); c < curCost {
			sort.Ints(set)
			curSet, curCost = dedupInts(set), c
		}
	}
	sort.Ints(curSet)
	return Result{Objects: curSet, Cost: curCost, Elapsed: time.Since(start)}, nil
}

func dedupInts(s []int) []int {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Brute exhaustively enumerates minimal covers — the testing oracle.
func (e *Engine) Brute(q Query, cost core.CostKind) (Result, error) {
	start := time.Now()
	qi := kwds.NewQueryIndex(q.Keywords)
	rel, _, err := e.relevant(q, qi)
	if err != nil {
		return Result{}, err
	}
	var (
		bestSet  []int
		bestCost = math.Inf(1)
		chosen   []int
	)
	var dfs func(covered kwds.Mask)
	dfs = func(covered kwds.Mask) {
		if covered == qi.Full() {
			set := dedupInts(append([]int(nil), chosen...))
			if c := e.EvalCost(cost, q, set); c < bestCost {
				bestCost = c
				bestSet = append([]int(nil), set...)
			}
			return
		}
		var branch kwds.Mask
		for b := 0; b < qi.Size(); b++ {
			if covered&(1<<uint(b)) == 0 {
				branch = 1 << uint(b)
				break
			}
		}
		for _, c := range rel {
			if c.mask&branch == 0 || c.mask&^covered == 0 {
				continue
			}
			chosen = append(chosen, c.idx)
			dfs(covered | c.mask)
			chosen = chosen[:len(chosen)-1]
		}
	}
	dfs(0)
	sort.Ints(bestSet)
	return Result{Objects: bestSet, Cost: bestCost, Elapsed: time.Since(start)}, nil
}
