package netcoskq

import (
	"math"
	"math/rand"
	"testing"

	"coskq/internal/core"
	"coskq/internal/geo"
	"coskq/internal/kwds"
	"coskq/internal/roadnet"
)

// genInstance builds a random road network with objects on random nodes.
func genInstance(rng *rand.Rand, rows, cols, nObjects, vocab, maxKw int) (*Engine, *roadnet.Graph) {
	g := roadnet.GenerateGrid(rows, cols, 10, 0.2, rows, rng.Int63())
	objs := make([]Object, nObjects)
	for i := range objs {
		k := 1 + rng.Intn(maxKw)
		ids := make([]kwds.ID, k)
		for j := range ids {
			ids[j] = kwds.ID(rng.Intn(vocab))
		}
		objs[i] = Object{
			Node:     roadnet.NodeID(rng.Intn(g.NumNodes())),
			Keywords: kwds.NewSet(ids...),
		}
	}
	e, err := NewEngine(g, objs)
	if err != nil {
		panic(err)
	}
	return e, g
}

func randNetQuery(rng *rand.Rand, g *roadnet.Graph, vocab, nkw int) Query {
	ids := make([]kwds.ID, nkw)
	for i := range ids {
		ids[i] = kwds.ID(rng.Intn(vocab))
	}
	return Query{
		Node:     roadnet.NodeID(rng.Intn(g.NumNodes())),
		Keywords: kwds.NewSet(ids...),
	}
}

func TestNewEngineValidation(t *testing.T) {
	g := roadnet.GenerateGrid(2, 2, 1, 0, 0, 1)
	if _, err := NewEngine(g, []Object{{Node: 99, Keywords: kwds.NewSet(1)}}); err == nil {
		t.Fatal("out-of-range object node should be rejected")
	}
	if _, err := NewEngine(g, nil); err != nil {
		t.Fatalf("empty object list should be fine: %v", err)
	}
}

func TestInfeasibleNetworkQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, g := genInstance(rng, 4, 4, 30, 8, 3)
	q := Query{Node: roadnet.NodeID(0), Keywords: kwds.NewSet(999)}
	_ = g
	for _, f := range []func(Query, core.CostKind) (Result, error){e.Exact, e.Appro, e.Brute} {
		if _, err := f(q, core.MaxSum); err != ErrInfeasible {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	}
}

// TestNetworkExactMatchesBruteForce: the owner-driven search stays exact
// under shortest-path distances.
func TestNetworkExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		e, g := genInstance(rng, 4+rng.Intn(3), 4+rng.Intn(3), 15+rng.Intn(25), 7, 3)
		q := randNetQuery(rng, g, 7, 1+rng.Intn(3))
		for _, cost := range []core.CostKind{core.MaxSum, core.Dia} {
			want, err := e.Brute(q, cost)
			if err == ErrInfeasible {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Exact(q, cost)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Cost-want.Cost) > 1e-9 {
				t.Fatalf("trial %d %v: exact %v, optimal %v (sets %v vs %v)",
					trial, cost, got.Cost, want.Cost, got.Objects, want.Objects)
			}
		}
	}
}

// TestNetworkApproRatio2: the generic-metric ratio bound of 2.
func TestNetworkApproRatio2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		e, g := genInstance(rng, 5, 5, 20+rng.Intn(30), 8, 3)
		q := randNetQuery(rng, g, 8, 1+rng.Intn(3))
		for _, cost := range []core.CostKind{core.MaxSum, core.Dia} {
			opt, err := e.Brute(q, cost)
			if err == ErrInfeasible {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Appro(q, cost)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < opt.Cost-1e-9 {
				t.Fatalf("appro %v below optimum %v", res.Cost, opt.Cost)
			}
			if opt.Cost > 0 && res.Cost/opt.Cost > 2+1e-9 {
				t.Fatalf("trial %d %v: network appro ratio %v exceeds 2", trial, cost, res.Cost/opt.Cost)
			}
			// Feasibility.
			var u kwds.Set
			for _, idx := range res.Objects {
				u = u.Union(e.Objects[idx].Keywords)
			}
			if !u.Covers(q.Keywords) {
				t.Fatal("appro returned infeasible set")
			}
		}
	}
}

// TestNetworkVsEuclidean: network costs dominate Euclidean costs for the
// same instance (edges are at least as long as straight lines).
func TestNetworkVsEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, g := genInstance(rng, 6, 6, 40, 8, 3)
	for trial := 0; trial < 20; trial++ {
		q := randNetQuery(rng, g, 8, 2)
		net, err := e.Exact(q, core.MaxSum)
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// Euclidean cost of the same set from the same location.
		qp := g.Point(q.Node)
		maxD, maxPair := 0.0, 0.0
		for i, a := range net.Objects {
			pa := g.Point(e.Objects[a].Node)
			if d := qp.Dist(pa); d > maxD {
				maxD = d
			}
			for _, b := range net.Objects[i+1:] {
				if d := pa.Dist(g.Point(e.Objects[b].Node)); d > maxPair {
					maxPair = d
				}
			}
		}
		if net.Cost < maxD+maxPair-1e-9 {
			t.Fatalf("network cost %v below Euclidean cost %v of the same set", net.Cost, maxD+maxPair)
		}
	}
}

func TestUnreachableObjectsExcluded(t *testing.T) {
	// Two components: the query can only be served by its own component.
	g := &roadnet.Graph{}
	a0 := g.AddNode(pt(0, 0))
	a1 := g.AddNode(pt(1, 0))
	b0 := g.AddNode(pt(100, 0))
	if err := g.AddEdge(a0, a1, 1); err != nil {
		t.Fatal(err)
	}
	// b0 is isolated.
	objs := []Object{
		{Node: a1, Keywords: kwds.NewSet(1)},
		{Node: b0, Keywords: kwds.NewSet(1, 2)},
	}
	e, err := NewEngine(g, objs)
	if err != nil {
		t.Fatal(err)
	}
	// Keyword 1 is reachable via object 0; keyword 2 only exists in the
	// unreachable component → infeasible.
	if _, err := e.Exact(Query{Node: a0, Keywords: kwds.NewSet(1)}, core.MaxSum); err != nil {
		t.Fatalf("reachable query failed: %v", err)
	}
	if _, err := e.Exact(Query{Node: a0, Keywords: kwds.NewSet(1, 2)}, core.MaxSum); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestEvalCostPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, g := genInstance(rng, 3, 3, 10, 5, 2)
	q := Query{Node: roadnet.NodeID(0), Keywords: kwds.NewSet(0)}
	_ = g
	for _, bad := range []func(){
		func() { e.EvalCost(core.MaxSum, q, nil) },
		func() { e.EvalCost(core.Sum, q, []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestClearCache(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, g := genInstance(rng, 4, 4, 20, 6, 2)
	q := randNetQuery(rng, g, 6, 2)
	before, err1 := e.Exact(q, core.MaxSum)
	e.ClearCache()
	after, err2 := e.Exact(q, core.MaxSum)
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("feasibility changed across ClearCache")
	}
	if err1 == nil && before.Cost != after.Cost {
		t.Fatal("answers changed across ClearCache")
	}
}

func pt(x, y float64) geo.Point {
	return geo.Point{X: x, Y: y}
}
