// Package rtree implements an in-memory R-tree over planar points: STR
// (Sort-Tile-Recursive) bulk loading, Guttman quadratic-split dynamic
// insertion, rectangle and disk range search, and best-first (incremental)
// nearest-neighbor search.
//
// The IR-tree (package irtree) builds on this structure by annotating every
// node with the keyword union of its subtree; the node layout is therefore
// exported within the module.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"coskq/internal/geo"
	"coskq/internal/pqueue"
)

// Entry is a leaf payload: an indexed point and its external identifier
// (the dataset ObjectID in this system).
type Entry struct {
	P  geo.Point
	ID uint32
}

// Node is an R-tree node. Leaf nodes carry Entries; internal nodes carry
// Children. Rect is the minimum bounding rectangle of the subtree.
//
// NodeID is a dense identifier assigned at construction, used by the
// IR-tree to attach per-node keyword posting data without widening this
// struct.
type Node struct {
	NodeID   int
	Rect     geo.Rect
	Leaf     bool
	Children []*Node
	Entries  []Entry
}

// Tree is an R-tree. Construct with New (empty, for dynamic insertion) or
// BulkLoad (STR packing). A Tree is not safe for concurrent mutation;
// concurrent read-only use is safe.
type Tree struct {
	root       *Node
	size       int
	maxEntries int
	minEntries int
	nextID     int
}

// DefaultFanout is the node capacity used when 0 is passed for maxEntries.
// The paper's IR-tree experiments use page-sized nodes; 32 entries is a
// standard in-memory choice.
const DefaultFanout = 32

func normalizeFanout(maxEntries int) (maxE, minE int) {
	if maxEntries <= 0 {
		maxEntries = DefaultFanout
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return maxEntries, maxEntries * 2 / 5
}

// New returns an empty tree with the given node capacity (0 for default).
func New(maxEntries int) *Tree {
	maxE, minE := normalizeFanout(maxEntries)
	t := &Tree{maxEntries: maxE, minEntries: minE}
	t.root = t.newNode(true)
	return t
}

func (t *Tree) newNode(leaf bool) *Node {
	n := &Node{NodeID: t.nextID, Leaf: leaf, Rect: geo.EmptyRect()}
	t.nextID++
	return n
}

// BulkLoad builds a tree over entries using Sort-Tile-Recursive packing.
// The entries slice is reordered in place.
func BulkLoad(entries []Entry, maxEntries int) *Tree {
	maxE, minE := normalizeFanout(maxEntries)
	t := &Tree{maxEntries: maxE, minEntries: minE, size: len(entries)}
	if len(entries) == 0 {
		t.root = t.newNode(true)
		return t
	}

	// Leaf level: sort by x, cut into vertical slabs of S runs, sort each
	// slab by y, pack runs of maxE entries.
	sort.Slice(entries, func(i, j int) bool { return entries[i].P.X < entries[j].P.X })
	leafCount := (len(entries) + maxE - 1) / maxE
	slabs := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlab := slabs * maxE

	var level []*Node
	for start := 0; start < len(entries); start += perSlab {
		end := start + perSlab
		if end > len(entries) {
			end = len(entries)
		}
		slab := entries[start:end]
		sort.Slice(slab, func(i, j int) bool { return slab[i].P.Y < slab[j].P.Y })
		for ls := 0; ls < len(slab); ls += maxE {
			le := ls + maxE
			if le > len(slab) {
				le = len(slab)
			}
			n := t.newNode(true)
			n.Entries = append(n.Entries, slab[ls:le]...)
			for _, e := range n.Entries {
				n.Rect = n.Rect.ExtendPoint(e.P)
			}
			level = append(level, n)
		}
	}

	// Upper levels: pack child nodes by center, same tiling.
	for len(level) > 1 {
		sort.Slice(level, func(i, j int) bool { return level[i].Rect.Center().X < level[j].Rect.Center().X })
		nodeCount := (len(level) + maxE - 1) / maxE
		slabs := int(math.Ceil(math.Sqrt(float64(nodeCount))))
		perSlab := slabs * maxE
		var next []*Node
		for start := 0; start < len(level); start += perSlab {
			end := start + perSlab
			if end > len(level) {
				end = len(level)
			}
			slab := level[start:end]
			sort.Slice(slab, func(i, j int) bool { return slab[i].Rect.Center().Y < slab[j].Rect.Center().Y })
			for ls := 0; ls < len(slab); ls += maxE {
				le := ls + maxE
				if le > len(slab) {
					le = len(slab)
				}
				n := t.newNode(false)
				n.Children = append(n.Children, slab[ls:le]...)
				for _, c := range n.Children {
					n.Rect = n.Rect.Union(c.Rect)
				}
				next = append(next, n)
			}
		}
		level = next
	}
	t.root = level[0]
	return t
}

// Root returns the root node. Callers must treat the structure as
// read-only.
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// NumNodes returns the number of nodes ever allocated (dense NodeID bound).
func (t *Tree) NumNodes() int { return t.nextID }

// Height returns the number of levels (a single leaf root has height 1).
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.Leaf {
		h++
		n = n.Children[0]
	}
	return h
}

// Insert adds an entry to the tree (Guttman insertion with quadratic
// split). The descent path is recorded explicitly so rect updates and
// splits propagate upward in O(height).
func (t *Tree) Insert(e Entry) {
	// Descend to a leaf, recording the path.
	var path []*Node
	n := t.root
	for {
		path = append(path, n)
		if n.Leaf {
			break
		}
		best := n.Children[0]
		bestEnl := best.Rect.Enlargement(geo.RectFromPoint(e.P))
		for _, c := range n.Children[1:] {
			enl := c.Rect.Enlargement(geo.RectFromPoint(e.P))
			if enl < bestEnl || (enl == bestEnl && c.Rect.Area() < best.Rect.Area()) {
				best, bestEnl = c, enl
			}
		}
		n = best
	}

	leaf := path[len(path)-1]
	leaf.Entries = append(leaf.Entries, e)
	leaf.Rect = leaf.Rect.ExtendPoint(e.P)
	t.size++

	var split *Node
	if len(leaf.Entries) > t.maxEntries {
		split = t.splitLeaf(leaf)
	}
	// Propagate rect growth and splits toward the root.
	for i := len(path) - 2; i >= 0; i-- {
		p := path[i]
		p.Rect = p.Rect.Union(path[i+1].Rect)
		if split != nil {
			p.Children = append(p.Children, split)
			p.Rect = p.Rect.Union(split.Rect)
			if len(p.Children) > t.maxEntries {
				split = t.splitInternal(p)
			} else {
				split = nil
			}
		}
	}
	if split != nil {
		newRoot := t.newNode(false)
		newRoot.Children = []*Node{t.root, split}
		newRoot.Rect = t.root.Rect.Union(split.Rect)
		t.root = newRoot
	}
}

// splitLeaf performs a quadratic split of an overfull leaf, leaving one
// group in n and returning the new sibling.
func (t *Tree) splitLeaf(n *Node) *Node {
	entries := n.Entries
	// Pick seeds: the pair wasting the most area.
	si, sj := pickSeeds(len(entries), func(i, j int) float64 {
		r := geo.RectFromPoint(entries[i].P).ExtendPoint(entries[j].P)
		return r.Area()
	})
	g1 := []Entry{entries[si]}
	g2 := []Entry{entries[sj]}
	r1 := geo.RectFromPoint(entries[si].P)
	r2 := geo.RectFromPoint(entries[sj].P)
	for k, e := range entries {
		if k == si || k == sj {
			continue
		}
		d1 := r1.Enlargement(geo.RectFromPoint(e.P))
		d2 := r2.Enlargement(geo.RectFromPoint(e.P))
		// Force-assign to honor minimum fill.
		remaining := len(entries) - k - 1
		switch {
		case len(g1)+remaining+1 <= t.minEntries:
			g1 = append(g1, e)
			r1 = r1.ExtendPoint(e.P)
		case len(g2)+remaining+1 <= t.minEntries:
			g2 = append(g2, e)
			r2 = r2.ExtendPoint(e.P)
		case d1 < d2 || (d1 == d2 && len(g1) < len(g2)):
			g1 = append(g1, e)
			r1 = r1.ExtendPoint(e.P)
		default:
			g2 = append(g2, e)
			r2 = r2.ExtendPoint(e.P)
		}
	}
	n.Entries = g1
	n.Rect = r1
	sib := t.newNode(true)
	sib.Entries = g2
	sib.Rect = r2
	return sib
}

// splitInternal performs a quadratic split of an overfull internal node.
func (t *Tree) splitInternal(n *Node) *Node {
	children := n.Children
	si, sj := pickSeeds(len(children), func(i, j int) float64 {
		return children[i].Rect.Union(children[j].Rect).Area()
	})
	g1 := []*Node{children[si]}
	g2 := []*Node{children[sj]}
	r1 := children[si].Rect
	r2 := children[sj].Rect
	for k, c := range children {
		if k == si || k == sj {
			continue
		}
		d1 := r1.Enlargement(c.Rect)
		d2 := r2.Enlargement(c.Rect)
		remaining := len(children) - k - 1
		switch {
		case len(g1)+remaining+1 <= t.minEntries:
			g1 = append(g1, c)
			r1 = r1.Union(c.Rect)
		case len(g2)+remaining+1 <= t.minEntries:
			g2 = append(g2, c)
			r2 = r2.Union(c.Rect)
		case d1 < d2 || (d1 == d2 && len(g1) < len(g2)):
			g1 = append(g1, c)
			r1 = r1.Union(c.Rect)
		default:
			g2 = append(g2, c)
			r2 = r2.Union(c.Rect)
		}
	}
	n.Children = g1
	n.Rect = r1
	sib := t.newNode(false)
	sib.Children = g2
	sib.Rect = r2
	return sib
}

// pickSeeds returns the index pair maximizing waste(i, j).
func pickSeeds(n int, waste func(i, j int) float64) (int, int) {
	bi, bj, bw := 0, 1, math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := waste(i, j); w > bw {
				bi, bj, bw = i, j, w
			}
		}
	}
	return bi, bj
}

// SearchRect invokes fn for every entry whose point lies inside r.
// Returning false from fn stops the search.
func (t *Tree) SearchRect(r geo.Rect, fn func(Entry) bool) {
	t.searchRect(t.root, r, fn)
}

func (t *Tree) searchRect(n *Node, r geo.Rect, fn func(Entry) bool) bool {
	if !n.Rect.Intersects(r) {
		return true
	}
	if n.Leaf {
		for _, e := range n.Entries {
			if r.ContainsPoint(e.P) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.Children {
		if !t.searchRect(c, r, fn) {
			return false
		}
	}
	return true
}

// SearchCircle invokes fn for every entry whose point lies inside the disk
// c. Returning false from fn stops the search.
func (t *Tree) SearchCircle(c geo.Circle, fn func(Entry) bool) {
	t.searchCircle(t.root, c, fn)
}

func (t *Tree) searchCircle(n *Node, c geo.Circle, fn func(Entry) bool) bool {
	if !c.IntersectsRect(n.Rect) {
		return true
	}
	if n.Leaf {
		for _, e := range n.Entries {
			if c.ContainsPoint(e.P) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, ch := range n.Children {
		if !t.searchCircle(ch, c, fn) {
			return false
		}
	}
	return true
}

// NearestK returns the k entries nearest to p in ascending distance order
// (fewer if the tree holds fewer than k entries).
func (t *Tree) NearestK(p geo.Point, k int) []Entry {
	if k <= 0 {
		return nil
	}
	it := t.NewNNIterator(p)
	out := make([]Entry, 0, k)
	for len(out) < k {
		e, _, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

// nnItem is a heap element of the best-first NN search: either a node or a
// resolved entry.
type nnItem struct {
	node  *Node
	entry Entry
}

// NNIterator yields entries in ascending distance from a fixed point using
// the classic best-first traversal (Hjaltason & Samet).
type NNIterator struct {
	p geo.Point
	h *pqueue.Queue[nnItem]
}

// NewNNIterator returns an incremental nearest-neighbor iterator from p.
func (t *Tree) NewNNIterator(p geo.Point) *NNIterator {
	it := &NNIterator{p: p, h: pqueue.New[nnItem](64)}
	if t.size > 0 || len(t.root.Entries) > 0 || len(t.root.Children) > 0 {
		it.h.Push(nnItem{node: t.root}, t.root.Rect.MinDist(p))
	}
	return it
}

// Next returns the next nearest entry and its distance, or ok=false when
// the tree is exhausted.
func (it *NNIterator) Next() (Entry, float64, bool) {
	for !it.h.Empty() {
		item, pri := it.h.Pop()
		if item.node == nil {
			return item.entry, pri, true
		}
		n := item.node
		if n.Leaf {
			for _, e := range n.Entries {
				it.h.Push(nnItem{entry: e}, it.p.Dist(e.P))
			}
		} else {
			for _, c := range n.Children {
				it.h.Push(nnItem{node: c}, c.Rect.MinDist(it.p))
			}
		}
	}
	return Entry{}, 0, false
}

// CheckInvariants validates the structural invariants of the tree. It is
// O(n log n) and intended for tests.
func (t *Tree) CheckInvariants() error {
	count, err := t.check(t.root, true, -1)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d reachable entries", t.size, count)
	}
	return nil
}

func (t *Tree) check(n *Node, isRoot bool, depthOfLeaves int) (int, error) {
	if n.Leaf {
		if !isRoot && len(n.Entries) == 0 {
			return 0, fmt.Errorf("rtree: empty non-root leaf %d", n.NodeID)
		}
		if len(n.Entries) > t.maxEntries {
			return 0, fmt.Errorf("rtree: leaf %d overfull (%d > %d)", n.NodeID, len(n.Entries), t.maxEntries)
		}
		r := geo.EmptyRect()
		for _, e := range n.Entries {
			if !n.Rect.ContainsPoint(e.P) {
				return 0, fmt.Errorf("rtree: leaf %d rect %v misses entry %v", n.NodeID, n.Rect, e.P)
			}
			r = r.ExtendPoint(e.P)
		}
		if len(n.Entries) > 0 && r != n.Rect {
			return 0, fmt.Errorf("rtree: leaf %d rect %v not tight (want %v)", n.NodeID, n.Rect, r)
		}
		return len(n.Entries), nil
	}
	if len(n.Children) == 0 {
		return 0, fmt.Errorf("rtree: internal node %d has no children", n.NodeID)
	}
	if len(n.Children) > t.maxEntries {
		return 0, fmt.Errorf("rtree: internal node %d overfull (%d > %d)", n.NodeID, len(n.Children), t.maxEntries)
	}
	total := 0
	r := geo.EmptyRect()
	for _, c := range n.Children {
		if !n.Rect.ContainsRect(c.Rect) {
			return 0, fmt.Errorf("rtree: node %d rect %v misses child rect %v", n.NodeID, n.Rect, c.Rect)
		}
		r = r.Union(c.Rect)
		cnt, err := t.check(c, false, depthOfLeaves)
		if err != nil {
			return 0, err
		}
		total += cnt
	}
	if r != n.Rect {
		return 0, fmt.Errorf("rtree: node %d rect %v not tight (want %v)", n.NodeID, n.Rect, r)
	}
	// All leaves must be at the same depth.
	depths := map[int]bool{}
	var walk func(m *Node, d int)
	walk = func(m *Node, d int) {
		if m.Leaf {
			depths[d] = true
			return
		}
		for _, c := range m.Children {
			walk(c, d+1)
		}
	}
	walk(n, 0)
	if len(depths) > 1 {
		return 0, fmt.Errorf("rtree: node %d has leaves at multiple depths", n.NodeID)
	}
	return total, nil
}

// Delete removes one entry matching e's point and id, returning whether a
// match was found. Underfull nodes along the path are condensed: their
// remaining entries (or subtrees' entries) are reinserted, the classic
// R-tree condense-tree step. The CoSKQ indexes are build-once, but the
// substrate supports full maintenance.
func (t *Tree) Delete(e Entry) bool {
	// Find the leaf containing e, keeping the path.
	var path []*Node
	leaf, pos := t.findLeaf(t.root, e, &path)
	if leaf == nil {
		return false
	}
	leaf.Entries = append(leaf.Entries[:pos], leaf.Entries[pos+1:]...)
	t.size--

	// Condense: walk the path bottom-up, removing underfull nodes and
	// collecting their orphaned entries for reinsertion.
	var orphans []Entry
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n == t.root {
			break
		}
		parent := path[i-1]
		under := (n.Leaf && len(n.Entries) < t.minEntries) ||
			(!n.Leaf && len(n.Children) < 2)
		if under {
			for j, c := range parent.Children {
				if c == n {
					parent.Children = append(parent.Children[:j], parent.Children[j+1:]...)
					break
				}
			}
			collectEntries(n, &orphans)
		}
	}
	// Recompute rects along the (possibly shortened) path.
	for i := len(path) - 1; i >= 0; i-- {
		recomputeRect(path[i])
	}
	// Shrink the root when it has a single internal child.
	for !t.root.Leaf && len(t.root.Children) == 1 {
		t.root = t.root.Children[0]
	}
	if !t.root.Leaf && len(t.root.Children) == 0 {
		t.root = t.newNode(true)
	}
	// Reinsert orphans (they were already counted in size; Insert
	// increments, so decrement first).
	t.size -= len(orphans)
	for _, o := range orphans {
		t.Insert(o)
	}
	return true
}

// findLeaf locates the leaf and position of e, appending the root-to-leaf
// path (excluding nothing) to *path. Returns (nil, 0) when not found.
func (t *Tree) findLeaf(n *Node, e Entry, path *[]*Node) (*Node, int) {
	if !n.Rect.ContainsPoint(e.P) {
		return nil, 0
	}
	*path = append(*path, n)
	if n.Leaf {
		for i, ent := range n.Entries {
			if ent.ID == e.ID && ent.P == e.P {
				return n, i
			}
		}
		*path = (*path)[:len(*path)-1]
		return nil, 0
	}
	for _, c := range n.Children {
		if leaf, pos := t.findLeaf(c, e, path); leaf != nil {
			return leaf, pos
		}
	}
	*path = (*path)[:len(*path)-1]
	return nil, 0
}

// collectEntries gathers every entry in n's subtree.
func collectEntries(n *Node, out *[]Entry) {
	if n.Leaf {
		*out = append(*out, n.Entries...)
		return
	}
	for _, c := range n.Children {
		collectEntries(c, out)
	}
}

// recomputeRect tightens n's rect to its current content.
func recomputeRect(n *Node) {
	r := geo.EmptyRect()
	if n.Leaf {
		for _, e := range n.Entries {
			r = r.ExtendPoint(e.P)
		}
	} else {
		for _, c := range n.Children {
			r = r.Union(c.Rect)
		}
	}
	n.Rect = r
}
