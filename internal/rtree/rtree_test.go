package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"coskq/internal/geo"
)

func randEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{P: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, ID: uint32(i)}
	}
	return es
}

// linearRect is the brute-force oracle for SearchRect.
func linearRect(es []Entry, r geo.Rect) map[uint32]bool {
	out := map[uint32]bool{}
	for _, e := range es {
		if r.ContainsPoint(e.P) {
			out[e.ID] = true
		}
	}
	return out
}

// linearNearest is the brute-force oracle for NearestK.
func linearNearest(es []Entry, p geo.Point, k int) []float64 {
	ds := make([]float64, len(es))
	for i, e := range es {
		ds[i] = p.Dist(e.P)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.NearestK(geo.Point{}, 3); len(got) != 0 {
		t.Fatalf("NearestK on empty = %v", got)
	}
	found := false
	tr.SearchRect(geo.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}, func(Entry) bool { found = true; return true })
	if found {
		t.Fatal("search on empty tree found something")
	}
	tr2 := BulkLoad(nil, 0)
	if tr2.Len() != 0 {
		t.Fatal("bulk load of nil should be empty")
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 31, 32, 33, 100, 1000, 5000} {
		es := randEntries(rng, n)
		tr := BulkLoad(es, 16)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New(8)
	es := randEntries(rng, 600)
	for i, e := range es {
		tr.Insert(e)
		if i%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 600 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatal("tree should have split")
	}
}

func TestInsertDuplicatePoints(t *testing.T) {
	tr := New(4)
	p := geo.Point{X: 5, Y: 5}
	for i := 0; i < 50; i++ {
		tr.Insert(Entry{P: p, ID: uint32(i)})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := map[uint32]bool{}
	tr.SearchRect(geo.RectFromPoint(p), func(e Entry) bool { got[e.ID] = true; return true })
	if len(got) != 50 {
		t.Fatalf("found %d of 50 duplicate points", len(got))
	}
}

func TestSearchRectMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	es := randEntries(rng, 2000)
	for _, build := range []func() *Tree{
		func() *Tree { cp := append([]Entry(nil), es...); return BulkLoad(cp, 16) },
		func() *Tree {
			tr := New(16)
			for _, e := range es {
				tr.Insert(e)
			}
			return tr
		},
	} {
		tr := build()
		for trial := 0; trial < 100; trial++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			r := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*200, MaxY: y + rng.Float64()*200}
			want := linearRect(es, r)
			got := map[uint32]bool{}
			tr.SearchRect(r, func(e Entry) bool { got[e.ID] = true; return true })
			if len(got) != len(want) {
				t.Fatalf("rect %v: got %d, want %d", r, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("rect %v: missing id %d", r, id)
				}
			}
		}
	}
}

func TestSearchCircleMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	es := randEntries(rng, 2000)
	tr := BulkLoad(append([]Entry(nil), es...), 16)
	for trial := 0; trial < 100; trial++ {
		c := geo.Circle{C: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, R: rng.Float64() * 150}
		want := map[uint32]bool{}
		for _, e := range es {
			if c.ContainsPoint(e.P) {
				want[e.ID] = true
			}
		}
		got := map[uint32]bool{}
		tr.SearchCircle(c, func(e Entry) bool { got[e.ID] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("circle %v: got %d, want %d", c, len(got), len(want))
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	es := randEntries(rng, 500)
	tr := BulkLoad(es, 8)
	count := 0
	tr.SearchRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, func(Entry) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d entries, want 7", count)
	}
}

func TestNearestKMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	es := randEntries(rng, 1500)
	tr := BulkLoad(append([]Entry(nil), es...), 16)
	for trial := 0; trial < 60; trial++ {
		p := geo.Point{X: rng.Float64() * 1200, Y: rng.Float64() * 1200}
		k := 1 + rng.Intn(20)
		want := linearNearest(es, p, k)
		got := tr.NearestK(p, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i, e := range got {
			if d := p.Dist(e.P); !almostEq(d, want[i]) {
				t.Fatalf("k=%d result %d: dist %v, want %v", k, i, d, want[i])
			}
		}
	}
}

func almostEq(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-9*(1+a+b)
}

func TestNNIteratorAscendingAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := randEntries(rng, 800)
	tr := BulkLoad(append([]Entry(nil), es...), 16)
	p := geo.Point{X: 500, Y: 500}
	it := tr.NewNNIterator(p)
	var prev float64 = -1
	seen := map[uint32]bool{}
	for {
		e, d, ok := it.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatalf("distances not ascending: %v after %v", d, prev)
		}
		if !almostEq(d, p.Dist(e.P)) {
			t.Fatalf("reported distance %v != actual %v", d, p.Dist(e.P))
		}
		prev = d
		seen[e.ID] = true
	}
	if len(seen) != len(es) {
		t.Fatalf("iterator yielded %d of %d entries", len(seen), len(es))
	}
}

func TestNearestKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	es := randEntries(rng, 10)
	tr := BulkLoad(append([]Entry(nil), es...), 4)
	if got := tr.NearestK(geo.Point{}, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := tr.NearestK(geo.Point{}, -1); got != nil {
		t.Fatal("k<0 should return nil")
	}
	if got := tr.NearestK(geo.Point{}, 100); len(got) != 10 {
		t.Fatalf("k>n should return all %d, got %d", 10, len(got))
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := BulkLoad(randEntries(rng, 10000), 16)
	h := tr.Height()
	// 10000 entries at fanout 16: ceil(log16(10000/16)) + 1 ≈ 4.
	if h < 3 || h > 6 {
		t.Fatalf("unexpected height %d for 10k entries at fanout 16", h)
	}
	if tr.NumNodes() <= 0 {
		t.Fatal("NumNodes should be positive")
	}
}

func TestClusteredData(t *testing.T) {
	// Heavily clustered data exercises split quality.
	rng := rand.New(rand.NewSource(10))
	var es []Entry
	id := uint32(0)
	for c := 0; c < 10; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 200; i++ {
			es = append(es, Entry{P: geo.Point{X: cx + rng.NormFloat64(), Y: cy + rng.NormFloat64()}, ID: id})
			id++
		}
	}
	tr := New(8)
	for _, e := range es {
		tr.Insert(e)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	p := geo.Point{X: 500, Y: 500}
	want := linearNearest(es, p, 5)
	got := tr.NearestK(p, 5)
	for i := range want {
		if !almostEq(p.Dist(got[i].P), want[i]) {
			t.Fatalf("clustered NN mismatch at %d", i)
		}
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	es := randEntries(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]Entry(nil), es...)
		BulkLoad(cp, DefaultFanout)
	}
}

func BenchmarkNearestK10(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := BulkLoad(randEntries(rng, 100000), DefaultFanout)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestK(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 10)
	}
}

func BenchmarkSearchCircle(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := BulkLoad(randEntries(rng, 100000), DefaultFanout)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geo.Circle{C: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, R: 50}
		n := 0
		tr.SearchCircle(c, func(Entry) bool { n++; return true })
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New(4)
	e1 := Entry{P: geo.Point{X: 1, Y: 1}, ID: 1}
	e2 := Entry{P: geo.Point{X: 2, Y: 2}, ID: 2}
	tr.Insert(e1)
	tr.Insert(e2)
	if !tr.Delete(e1) {
		t.Fatal("delete of present entry failed")
	}
	if tr.Delete(e1) {
		t.Fatal("second delete should fail")
	}
	if tr.Delete(Entry{P: geo.Point{X: 9, Y: 9}, ID: 9}) {
		t.Fatal("delete of absent entry should fail")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := false
	tr.SearchRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, func(e Entry) bool {
		if e.ID == 1 {
			t.Fatal("deleted entry still found")
		}
		found = e.ID == 2 || found
		return true
	})
	if !found {
		t.Fatal("remaining entry lost")
	}
}

// TestDeleteRandomized: interleave inserts and deletes, checking
// invariants and search equivalence against a mirror map.
func TestDeleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := New(6)
	mirror := map[uint32]geo.Point{}
	nextID := uint32(0)
	for op := 0; op < 4000; op++ {
		if len(mirror) == 0 || rng.Intn(3) > 0 {
			p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			tr.Insert(Entry{P: p, ID: nextID})
			mirror[nextID] = p
			nextID++
		} else {
			// Delete a random present entry.
			var id uint32
			for k := range mirror {
				id = k
				break
			}
			if !tr.Delete(Entry{P: mirror[id], ID: id}) {
				t.Fatalf("op %d: failed to delete present entry %d", op, id)
			}
			delete(mirror, id)
		}
		if op%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != len(mirror) {
		t.Fatalf("Len = %d, mirror %d", tr.Len(), len(mirror))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full-range search must return exactly the mirror.
	got := map[uint32]geo.Point{}
	tr.SearchRect(geo.Rect{MinX: -1, MinY: -1, MaxX: 101, MaxY: 101}, func(e Entry) bool {
		got[e.ID] = e.P
		return true
	})
	if len(got) != len(mirror) {
		t.Fatalf("search found %d, want %d", len(got), len(mirror))
	}
	for id, p := range mirror {
		if got[id] != p {
			t.Fatalf("entry %d mismatch", id)
		}
	}
	// Nearest neighbors still correct after heavy churn.
	var es []Entry
	for id, p := range mirror {
		es = append(es, Entry{P: p, ID: id})
	}
	q := geo.Point{X: 50, Y: 50}
	want := linearNearest(es, q, 5)
	for i, e := range tr.NearestK(q, 5) {
		if !almostEq(q.Dist(e.P), want[i]) {
			t.Fatalf("post-delete NN %d wrong", i)
		}
	}
}

func TestDeleteDrainCompletely(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	es := randEntries(rng, 300)
	tr := BulkLoad(append([]Entry(nil), es...), 8)
	for _, e := range es {
		if !tr.Delete(e) {
			t.Fatalf("failed to delete %v", e)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after draining", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The drained tree is reusable.
	tr.Insert(Entry{P: geo.Point{X: 1, Y: 1}, ID: 1})
	if tr.Len() != 1 {
		t.Fatal("insert after drain failed")
	}
}
