// Costcompare runs the same query batch under every cost function the
// library supports (the paper's MaxSum and Dia plus the Sum and MinMax
// extensions) and prints how the answers differ — set size, achieved cost
// per cost function, and the exact-vs-approximate gap. It is a compact
// tour of the whole public solving surface.
package main

import (
	"fmt"
	"log"

	"coskq"
)

func main() {
	ds := coskq.Generate(coskq.GenConfig{
		Name: "demo", NumObjects: 30000, VocabSize: 800,
		AvgKeywords: 4, Clusters: 60, Seed: 11,
	})
	eng := coskq.NewEngine(ds, 0)
	gen := coskq.NewQueryGen(eng, 0, 40, 23)

	type combo struct {
		cost   coskq.CostKind
		exact  coskq.Method
		approx coskq.Method
	}
	combos := []combo{
		{coskq.MaxSum, coskq.OwnerExact, coskq.OwnerAppro},
		{coskq.Dia, coskq.OwnerExact, coskq.OwnerAppro},
		{coskq.Sum, coskq.OwnerExact, coskq.GreedySum},
		{coskq.MinMax, coskq.OwnerExact, coskq.OwnerAppro},
	}

	const batch = 25
	fmt.Printf("%d queries (|q.ψ|=5) over %d objects\n\n", batch, ds.Len())
	fmt.Printf("%-8s %12s %12s %10s %10s\n", "cost", "exact(avg)", "approx(avg)", "gap(avg)", "|S|(avg)")

	for _, c := range combos {
		var exSum, apSum, gap, size float64
		n := 0
		for i := 0; i < batch; i++ {
			loc, kws := gen.Next(5)
			q := coskq.Query{Loc: loc, Keywords: kws}
			ex, err := eng.Solve(q, c.cost, c.exact)
			if err == coskq.ErrInfeasible {
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			ap, err := eng.Solve(q, c.cost, c.approx)
			if err != nil {
				log.Fatal(err)
			}
			exSum += ex.Cost
			apSum += ap.Cost
			if ex.Cost > 0 {
				gap += ap.Cost/ex.Cost - 1
			}
			size += float64(len(ex.Set))
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Printf("%-8v %12.2f %12.2f %9.2f%% %10.2f\n",
			c.cost, exSum/float64(n), apSum/float64(n), 100*gap/float64(n), size/float64(n))
	}

	fmt.Println("\nMaxSum charges distance-to-query + group diameter; Dia takes their max;")
	fmt.Println("Sum charges every member's travel; MinMax charges first-stop + diameter.")
}
