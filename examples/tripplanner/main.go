// Tripplanner reproduces the paper's motivating tourist scenario: a
// visitor at a hotel wants a set of nearby POIs that together offer
// sight-seeing, shopping and dining — close to the hotel AND close to each
// other, which is exactly what the MaxSum cost optimizes.
//
// The program generates a Hotel-profile dataset (calibrated to the paper's
// Hotel dataset statistics), plants a few labelled POIs so the walk-through
// is readable, and compares the exact answer with the approximation and
// the nearest-neighbor-set baseline.
package main

import (
	"fmt"
	"log"

	"coskq"
)

func main() {
	// City backdrop: a realistic POI distribution from the Hotel profile.
	ds0 := coskq.Generate(coskq.ProfileHotel(42))

	// Rebuild with a few hand-placed POIs near the hotel at (500, 500) so
	// the output tells a story. (Datasets are immutable; the builder is
	// the way to compose them.)
	b := coskq.NewBuilder("city")
	for i := 0; i < ds0.Len(); i++ {
		o := ds0.Object(coskq.ObjectID(i))
		words := make([]string, o.Keywords.Len())
		for j, id := range o.Keywords {
			words[j] = ds0.Vocab.Word(id)
		}
		b.Add(o.Loc, words...)
	}
	b.Add(coskq.Point{X: 503, Y: 498}, "attractions", "park")
	b.Add(coskq.Point{X: 497, Y: 503}, "shopping", "mall")
	b.Add(coskq.Point{X: 505, Y: 505}, "restaurant", "seafood")
	b.Add(coskq.Point{X: 480, Y: 520}, "attractions", "shopping", "restaurant") // compact but farther
	ds := b.Build()

	eng := coskq.NewEngine(ds, 0)
	hotel := coskq.Point{X: 500, Y: 500}
	q := coskq.Query{
		Loc:      hotel,
		Keywords: coskq.Keywords(eng, "attractions", "shopping", "restaurant"),
	}

	fmt.Printf("Planning a day out from the hotel at %v\n", hotel)
	fmt.Printf("Needs: attractions, shopping, restaurant (over %d POIs)\n\n", ds.Len())

	show := func(name string, method coskq.Method) float64 {
		res, err := eng.Solve(q, coskq.MaxSum, method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (cost %.2f, %v):\n", name, res.Cost, res.Stats.Elapsed.Round(1000))
		for _, id := range res.Set {
			o := ds.Object(id)
			fmt.Printf("  %-28s %6.2f from hotel   %s\n",
				fmt.Sprintf("POI #%d at %v", o.ID, o.Loc), hotel.Dist(o.Loc), o.Keywords.Format(ds.Vocab))
		}
		fmt.Println()
		return res.Cost
	}

	exact := show("MaxSum-Exact (optimal plan)", coskq.OwnerExact)
	appro := show("MaxSum-Appro (1.375-approximation)", coskq.OwnerAppro)
	nnset := show("Cao-Appro1 (per-need nearest neighbors)", coskq.CaoAppro1)

	fmt.Printf("approximation overhead: %.1f%%; NN-set overhead: %.1f%%\n",
		100*(appro/exact-1), 100*(nnset/exact-1))
}
