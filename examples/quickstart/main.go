// Quickstart: build a tiny geo-textual dataset by hand, index it, and run
// one collective spatial keyword query with the paper's exact and
// approximate algorithms.
package main

import (
	"fmt"
	"log"

	"coskq"
)

func main() {
	// A handful of points of interest around a city center at (0, 0).
	b := coskq.NewBuilder("downtown")
	b.Add(coskq.Point{X: 1.0, Y: 0.5}, "cafe", "wifi")
	b.Add(coskq.Point{X: 1.2, Y: 0.8}, "museum")
	b.Add(coskq.Point{X: 0.9, Y: 1.1}, "bookstore", "cafe")
	b.Add(coskq.Point{X: 5.0, Y: 5.0}, "museum", "cafe", "bookstore") // far one-stop shop
	b.Add(coskq.Point{X: -2.0, Y: 1.0}, "museum", "wifi")
	ds := b.Build()

	eng := coskq.NewEngine(ds, 0)

	// Find a set of POIs that together offer a cafe, a museum and a
	// bookstore, staying compact and close to our location.
	q := coskq.Query{
		Loc:      coskq.Point{X: 0, Y: 0},
		Keywords: coskq.Keywords(eng, "cafe", "museum", "bookstore"),
	}

	exact, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaxSum-Exact: cost %.3f\n", exact.Cost)
	for _, id := range exact.Set {
		o := ds.Object(id)
		fmt.Printf("  visit %v  %s\n", o.Loc, o.Keywords.Format(ds.Vocab))
	}

	appro, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerAppro)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaxSum-Appro: cost %.3f (ratio %.3f, proven ≤ 1.375)\n",
		appro.Cost, appro.Cost/exact.Cost)

	// The Dia cost prefers sets whose largest single distance — either to
	// the query or between members — is small.
	dia, err := eng.Solve(q, coskq.Dia, coskq.OwnerExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dia-Exact:    cost %.3f over %d objects\n", dia.Cost, len(dia.Set))
}
