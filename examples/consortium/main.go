// Consortium reproduces the paper's second motivating scenario: a project
// manager assembles a consortium of partners who collectively provide all
// required skills and are close to each other (so collaboration is cheap).
// Skills are keywords, partner offices are locations, and the Dia cost —
// the larger of the manager's worst travel distance and the partners'
// worst pairwise distance — is the natural objective.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"coskq"
)

var skills = []string{
	"frontend", "backend", "databases", "ml", "security",
	"devops", "mobile", "design", "legal", "marketing",
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// 3000 candidate partners spread over a few tech hubs; each offers a
	// couple of skills.
	b := coskq.NewBuilder("partners")
	hubs := []coskq.Point{{X: 100, Y: 100}, {X: 800, Y: 200}, {X: 400, Y: 700}, {X: 650, Y: 650}}
	for i := 0; i < 3000; i++ {
		hub := hubs[rng.Intn(len(hubs))]
		loc := coskq.Point{X: hub.X + rng.NormFloat64()*30, Y: hub.Y + rng.NormFloat64()*30}
		k := 1 + rng.Intn(3)
		own := make([]string, k)
		for j := range own {
			own[j] = skills[rng.Intn(len(skills))]
		}
		b.Add(loc, own...)
	}
	ds := b.Build()
	eng := coskq.NewEngine(ds, 0)

	manager := coskq.Point{X: 420, Y: 680} // near the third hub
	need := []string{"backend", "databases", "ml", "security", "legal"}
	q := coskq.Query{Loc: manager, Keywords: coskq.Keywords(eng, need...)}

	fmt.Printf("Manager at %v needs skills %v\n\n", manager, need)

	exact, err := eng.Solve(q, coskq.Dia, coskq.OwnerExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dia-Exact consortium (diameter %.1f):\n", exact.Cost)
	printTeam(ds, manager, exact.Set)

	// The √3-approximation answers large instances fast with near-optimal
	// diameter.
	appro, err := eng.Solve(q, coskq.Dia, coskq.OwnerAppro)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDia-Appro consortium (diameter %.1f, ratio %.3f ≤ √3):\n",
		appro.Cost, appro.Cost/exact.Cost)
	printTeam(ds, manager, appro.Set)

	// Contrast with MaxSum: it additionally charges the manager's travel,
	// pulling the team toward the manager even if slightly less compact.
	ms, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMaxSum-Exact consortium (cost %.1f) — travel-weighted alternative:\n", ms.Cost)
	printTeam(ds, manager, ms.Set)
}

func printTeam(ds *coskq.Dataset, manager coskq.Point, team []coskq.ObjectID) {
	for _, id := range team {
		o := ds.Object(id)
		fmt.Printf("  partner #%-5d at %-22v %5.1f away   skills %s\n",
			o.ID, o.Loc, manager.Dist(o.Loc), o.Keywords.Format(ds.Vocab))
	}
}
