// Roadtrip demonstrates the road-network CoSKQ extension (the paper's
// future-work direction): the same collective query — find POIs that
// together cover all needs, compactly — but with every distance measured
// along a road network instead of straight lines. The program compares
// the network-optimal answer against the Euclidean answer for the same
// scene and shows where they diverge (e.g. a POI across a long detour).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"coskq"
	"coskq/roadnet"
)

var needs = []string{"fuel", "food", "camping"}

func main() {
	rng := rand.New(rand.NewSource(12))

	// A 25×25 road grid (~100m blocks) with a few diagonal shortcuts.
	g := roadnet.GenerateGrid(25, 25, 100, 0.25, 30, 7)
	fmt.Printf("road network: %d junctions, %d road segments\n", g.NumNodes(), g.NumEdges())

	// 400 POIs on random junctions; keywords from a small amenity set.
	amenities := []string{"fuel", "food", "camping", "atm", "pharmacy", "motel"}
	var netObjs []roadnet.Object
	b := coskq.NewBuilder("pois") // parallel Euclidean dataset for comparison
	for i := 0; i < 400; i++ {
		node := roadnet.NodeID(rng.Intn(g.NumNodes()))
		k := 1 + rng.Intn(2)
		words := make([]string, k)
		for j := range words {
			words[j] = amenities[rng.Intn(len(amenities))]
		}
		b.Add(g.Point(node), words...)
		netObjs = append(netObjs, roadnet.Object{Node: node})
	}
	ds := b.Build()
	// Fill in the interned keyword sets now that the dataset is final
	// (object i of the dataset is netObjs[i]).
	for i := range netObjs {
		netObjs[i].Keywords = ds.Object(coskq.ObjectID(i)).Keywords
	}

	netEng, err := roadnet.NewEngine(g, netObjs)
	if err != nil {
		log.Fatal(err)
	}
	eucEng := coskq.NewEngine(ds, 0)

	startNode := roadnet.NodeID(12*25 + 12) // mid-grid junction
	needKws := coskq.Keywords(eucEng, needs...)

	netRes, err := netEng.Exact(roadnet.Query{Node: startNode, Keywords: needKws}, coskq.MaxSum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnetwork-optimal stop set (MaxSum over road distance = %.0f m):\n", netRes.Cost)
	for _, idx := range netRes.Objects {
		o := netObjs[idx]
		fmt.Printf("  junction %-5d %s\n", o.Node, o.Keywords.Format(ds.Vocab))
	}

	eucRes, err := eucEng.Solve(coskq.Query{Loc: g.Point(startNode), Keywords: needKws},
		coskq.MaxSum, coskq.OwnerExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEuclidean-optimal stop set (MaxSum over straight lines = %.0f m):\n", eucRes.Cost)
	for _, id := range eucRes.Set {
		o := ds.Object(id)
		fmt.Printf("  POI #%-5d at %v  %s\n", o.ID, o.Loc, o.Keywords.Format(ds.Vocab))
	}

	appro, err := netEng.Appro(roadnet.Query{Node: startNode, Keywords: needKws}, coskq.MaxSum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnetwork approximation: %.0f m (ratio %.3f, proven ≤ 2 on networks)\n",
		appro.Cost, appro.Cost/netRes.Cost)
}
