package coskq_test

import (
	"fmt"

	"coskq"
)

// ExampleEngine_Solve answers one CoSKQ with the exact distance
// owner-driven algorithm.
func ExampleEngine_Solve() {
	b := coskq.NewBuilder("demo")
	b.Add(coskq.Point{X: 1, Y: 0}, "cafe")
	b.Add(coskq.Point{X: 0, Y: 2}, "museum")
	b.Add(coskq.Point{X: 2, Y: 2}, "cafe", "museum")
	eng := coskq.NewEngine(b.Build(), 0)

	q := coskq.Query{
		Loc:      coskq.Point{X: 0, Y: 0},
		Keywords: coskq.Keywords(eng, "cafe", "museum"),
	}
	res, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerExact)
	if err != nil {
		panic(err)
	}
	fmt.Printf("objects %v, cost %.3f\n", res.Set, res.Cost)
	// Output: objects [2], cost 2.828
}

// ExampleEngine_Solve_dia shows how the Dia cost can prefer a different
// set than MaxSum on the same data: it only charges the largest single
// distance, so two close-by objects beat one farther one-stop object.
func ExampleEngine_Solve_dia() {
	b := coskq.NewBuilder("demo")
	b.Add(coskq.Point{X: 1, Y: 0}, "cafe")
	b.Add(coskq.Point{X: 0, Y: 2}, "museum")
	b.Add(coskq.Point{X: 2, Y: 2}, "cafe", "museum")
	eng := coskq.NewEngine(b.Build(), 0)

	q := coskq.Query{
		Loc:      coskq.Point{X: 0, Y: 0},
		Keywords: coskq.Keywords(eng, "cafe", "museum"),
	}
	res, err := eng.Solve(q, coskq.Dia, coskq.OwnerExact)
	if err != nil {
		panic(err)
	}
	fmt.Printf("objects %v, cost %.3f\n", res.Set, res.Cost)
	// Output: objects [0 1], cost 2.236
}

// ExampleEngine_TopK ranks the k cheapest irredundant feasible sets.
func ExampleEngine_TopK() {
	b := coskq.NewBuilder("demo")
	b.Add(coskq.Point{X: 1, Y: 0}, "cafe")
	b.Add(coskq.Point{X: 0, Y: 2}, "museum")
	b.Add(coskq.Point{X: 2, Y: 2}, "cafe", "museum")
	eng := coskq.NewEngine(b.Build(), 0)

	q := coskq.Query{
		Loc:      coskq.Point{X: 0, Y: 0},
		Keywords: coskq.Keywords(eng, "cafe", "museum"),
	}
	top, err := eng.TopK(q, coskq.MaxSum, 2)
	if err != nil {
		panic(err)
	}
	for i, r := range top {
		fmt.Printf("rank %d: objects %v, cost %.3f\n", i+1, r.Set, r.Cost)
	}
	// Output:
	// rank 1: objects [2], cost 2.828
	// rank 2: objects [0 1], cost 4.236
}

// ExampleGenerate builds a dataset calibrated to the paper's Hotel
// dataset and prints its statistics.
func ExampleGenerate() {
	ds := coskq.Generate(coskq.GenConfig{
		Name: "mini", NumObjects: 1000, VocabSize: 50, AvgKeywords: 3, Seed: 1,
	})
	s := ds.Stats()
	fmt.Printf("objects=%d vocab=%d\n", s.NumObjects, s.NumUniqueWords)
	// Output: objects=1000 vocab=50
}
