#!/usr/bin/env bash
# scatter_smoke.sh — end-to-end scatter-gather smoke: three coskq-server
# shard processes plus a coordinator fanning /query out to them over
# HTTP. Exercises the real binaries and the real transport, unlike the
# httptest-based suite. Exits non-zero on any failed check.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/coskq-server" ./cmd/coskq-server
go build -o "$work/coskq-datagen" ./cmd/coskq-datagen

for i in 1 2 3; do
    "$work/coskq-datagen" -out "$work/shard$i.gob" -n 400 -vocab 40 -clusters 5 -seed "$i"
done

ports=(9471 9472 9473)
for i in 1 2 3; do
    "$work/coskq-server" -data "$work/shard$i.gob" -addr "127.0.0.1:${ports[$((i - 1))]}" &
    pids+=($!)
done

wait_up() {
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "server on port $1 never came up" >&2
    return 1
}
for p in "${ports[@]}"; do wait_up "$p"; done

"$work/coskq-server" \
    -peers "http://127.0.0.1:${ports[0]},http://127.0.0.1:${ports[1]},http://127.0.0.1:${ports[2]}" \
    -addr 127.0.0.1:9470 -degrade incumbent &
pids+=($!)
wait_up 9470

health="$(curl -fsS http://127.0.0.1:9470/healthz)"
echo "healthz: $health"
grep -q '"mode":"scatter-gather"' <<<"$health"
grep -q '"shards":3' <<<"$health"

# w000000 is the Zipf head of every datagen vocabulary: present on all
# three shards, so the fleet answer must be a clean (non-degraded) 200.
body="$(curl -fsS 'http://127.0.0.1:9470/query?x=500&y=500&kw=w000000,w000001')"
echo "query: $body"
grep -q '"cost":' <<<"$body"
if grep -q '"degraded":true' <<<"$body"; then
    echo "healthy fleet answered degraded" >&2
    exit 1
fi

# The shard data plane every server mounts must agree with the meta the
# coordinator routed on.
curl -fsS "http://127.0.0.1:${ports[0]}/shard/meta" | grep -q '"objects":400'

echo "scatter-gather smoke OK"
