// Root benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation (T1, E1–E8; see DESIGN.md §5) plus the ablations A1
// (pruning rules of the owner-driven exact search) and A2 (IR-tree vs
// linear scan for keyword NN). They run the same workloads as
// cmd/coskq-bench at benchmark-friendly scale; per-op time is the mean
// per-query latency of the named algorithm at the named setting.
package coskq_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"coskq"
	"coskq/internal/core"
	"coskq/internal/datagen"
	"coskq/internal/geo"
	"coskq/internal/invindex"
	"coskq/internal/irtree"
	"coskq/internal/kwds"
	roadnetpub "coskq/roadnet"
)

// engineCache shares indexed datasets across benchmarks in one process.
var engineCache = struct {
	sync.Mutex
	m map[string]*coskq.Engine
}{m: map[string]*coskq.Engine{}}

func cachedEngine(key string, build func() *coskq.Dataset) *coskq.Engine {
	engineCache.Lock()
	defer engineCache.Unlock()
	if e, ok := engineCache.m[key]; ok {
		return e
	}
	e := coskq.NewEngine(build(), 0)
	engineCache.m[key] = e
	return e
}

func hotelEngine() *coskq.Engine {
	return cachedEngine("hotel", func() *coskq.Dataset {
		return coskq.Generate(coskq.ProfileHotel(1))
	})
}

// benchQueries draws a reusable query batch.
func benchQueries(e *coskq.Engine, n, k int, seed int64) []coskq.Query {
	g := coskq.NewQueryGen(e, 0, 40, seed)
	out := make([]coskq.Query, n)
	for i := range out {
		loc, kws := g.Next(k)
		out[i] = coskq.Query{Loc: loc, Keywords: kws}
	}
	return out
}

// runAlgo measures one (cost, method) pair over a query batch: each b.N
// iteration answers one query (round-robin over the batch).
func runAlgo(b *testing.B, e *coskq.Engine, queries []coskq.Query, cost coskq.CostKind, m coskq.Method) {
	b.Helper()
	e.NodeBudget = 50_000_000
	defer func() { e.NodeBudget = 0 }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		_, err := e.Solve(q, cost, m)
		if err != nil && err != coskq.ErrInfeasible && err != core.ErrBudgetExceeded {
			b.Fatal(err)
		}
	}
}

var paperAlgos = []struct {
	name string
	m    coskq.Method
}{
	{"OwnerExact", coskq.OwnerExact},
	{"CaoExact", coskq.CaoExact},
	{"OwnerAppro", coskq.OwnerAppro},
	{"CaoAppro1", coskq.CaoAppro1},
	{"CaoAppro2", coskq.CaoAppro2},
}

// BenchmarkOwnerExact measures the intra-query parallel speedup of the
// owner-driven exact search across worker counts (DESIGN.md §10;
// workers=1 is the serial path). Meaningful speedups need GOMAXPROCS ≥
// the worker count — on a single-core runner all counts time alike.
func BenchmarkOwnerExact(b *testing.B) {
	e := hotelEngine()
	queries := benchQueries(e, 32, 9, 900)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e.Parallelism = workers
			defer func() { e.Parallelism = 0 }()
			runAlgo(b, e, queries, coskq.MaxSum, coskq.OwnerExact)
		})
	}
}

// BenchmarkT1DatasetStats regenerates the dataset statistics table's
// underlying pass (profile generation + one-pass statistics).
func BenchmarkT1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := coskq.Generate(coskq.ProfileHotel(int64(i)))
		if s := ds.Stats(); s.NumObjects != 20790 {
			b.Fatal("bad profile")
		}
	}
}

// qkwSweep is the E1–E4 driver: per (|q.ψ|, algorithm) sub-benchmark.
func qkwSweep(b *testing.B, e *coskq.Engine, cost coskq.CostKind) {
	for _, k := range []int{3, 6, 9, 12, 15} {
		queries := benchQueries(e, 32, k, int64(100+k))
		for _, a := range paperAlgos {
			b.Run(fmt.Sprintf("qkw=%d/%s", k, a.name), func(b *testing.B) {
				runAlgo(b, e, queries, cost, a.m)
			})
		}
	}
}

// BenchmarkE1QueryKeywordsMaxSumHotel — paper figure "effect of |q.ψ|,
// MaxSum cost, Hotel dataset".
func BenchmarkE1QueryKeywordsMaxSumHotel(b *testing.B) {
	qkwSweep(b, hotelEngine(), coskq.MaxSum)
}

// BenchmarkE2QueryKeywordsDiaHotel — same sweep under the Dia cost.
func BenchmarkE2QueryKeywordsDiaHotel(b *testing.B) {
	qkwSweep(b, hotelEngine(), coskq.Dia)
}

// BenchmarkE3QueryKeywordsGN — |q.ψ| sweep on the (scaled) GN profile.
func BenchmarkE3QueryKeywordsGN(b *testing.B) {
	e := cachedEngine("gn", func() *coskq.Dataset {
		return coskq.Generate(coskq.ProfileGN(1, 0.01))
	})
	qkwSweep(b, e, coskq.MaxSum)
}

// BenchmarkE4QueryKeywordsWeb — |q.ψ| sweep on the (scaled) Web profile.
func BenchmarkE4QueryKeywordsWeb(b *testing.B) {
	e := cachedEngine("web", func() *coskq.Dataset {
		return coskq.Generate(coskq.ProfileWeb(1, 0.02))
	})
	qkwSweep(b, e, coskq.MaxSum)
}

// avgKwSweep is the E5/E6 driver over augmented-Hotel datasets.
func avgKwSweep(b *testing.B, cost coskq.CostKind) {
	for _, avg := range []float64{4, 8, 16, 32} {
		e := cachedEngine(fmt.Sprintf("hotel-kw%.0f", avg), func() *coskq.Dataset {
			ds := coskq.Generate(coskq.ProfileHotel(1))
			if avg > 4 {
				ds = coskq.AugmentKeywords(ds, avg, 2)
			}
			return ds
		})
		queries := benchQueries(e, 16, 10, int64(200+int(avg)))
		for _, a := range paperAlgos {
			b.Run(fmt.Sprintf("avgkw=%.0f/%s", avg, a.name), func(b *testing.B) {
				runAlgo(b, e, queries, cost, a.m)
			})
		}
	}
}

// BenchmarkE5AvgKeywordsMaxSum — paper figure "effect of avg |o.ψ|,
// MaxSum" (|q.ψ| = 10).
func BenchmarkE5AvgKeywordsMaxSum(b *testing.B) { avgKwSweep(b, coskq.MaxSum) }

// BenchmarkE6AvgKeywordsDia — same sweep under the Dia cost.
func BenchmarkE6AvgKeywordsDia(b *testing.B) { avgKwSweep(b, coskq.Dia) }

// scaleSweep is the E7/E8 driver over GN-augmented dataset sizes.
func scaleSweep(b *testing.B, cost coskq.CostKind) {
	for _, n := range []int{50_000, 200_000} {
		e := cachedEngine(fmt.Sprintf("gn-n%d", n), func() *coskq.Dataset {
			base := coskq.Generate(coskq.ProfileGN(1, 0.01))
			return coskq.AugmentToN(base, n, 3)
		})
		queries := benchQueries(e, 16, 10, int64(300+n))
		for _, a := range paperAlgos {
			b.Run(fmt.Sprintf("n=%d/%s", n, a.name), func(b *testing.B) {
				runAlgo(b, e, queries, cost, a.m)
			})
		}
	}
}

// BenchmarkE7ScalabilityMaxSum — paper figure "scalability, MaxSum"
// (benchmark-scale sizes; cmd/coskq-bench -full runs the 2M–10M sweep).
func BenchmarkE7ScalabilityMaxSum(b *testing.B) { scaleSweep(b, coskq.MaxSum) }

// BenchmarkE8ScalabilityDia — same sweep under the Dia cost.
func BenchmarkE8ScalabilityDia(b *testing.B) { scaleSweep(b, coskq.Dia) }

// BenchmarkA1Pruning quantifies each pruning rule of the owner-driven
// exact search by disabling it (DESIGN.md ablation A1).
func BenchmarkA1Pruning(b *testing.B) {
	e := hotelEngine()
	queries := benchQueries(e, 32, 9, 400)
	cases := []struct {
		name string
		ab   core.Ablation
	}{
		{"full", core.Ablation{}},
		{"no-owner-ring", core.Ablation{NoOwnerRing: true}},
		{"no-incumbent-break", core.Ablation{NoIncumbentBreak: true}},
		{"no-pair-prune", core.Ablation{NoPairPrune: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			e.Ablation = c.ab
			defer func() { e.Ablation = core.Ablation{} }()
			runAlgo(b, e, queries, coskq.MaxSum, coskq.OwnerExact)
		})
	}
}

// BenchmarkA2KeywordNN compares the IR-tree keyword NN against a linear
// scan over the inverted index posting list (DESIGN.md ablation A2).
func BenchmarkA2KeywordNN(b *testing.B) {
	ds := datagen.Generate(datagen.Config{
		Name: "a2", NumObjects: 100_000, VocabSize: 2000, AvgKeywords: 5, Clusters: 100, Seed: 7,
	})
	tree := irtree.Build(ds, 0)
	inv := invindex.Build(ds)
	ranked := inv.ByFrequency()
	kws := ranked[:100] // the frequent head, where the scan is most expensive

	b.Run("irtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := geo.Point{X: float64(i%1000) + 0.5, Y: float64((i*7)%1000) + 0.5}
			tree.NN(p, kws[i%len(kws)])
		}
	})
	b.Run("postings-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := geo.Point{X: float64(i%1000) + 0.5, Y: float64((i*7)%1000) + 0.5}
			kw := kws[i%len(kws)]
			best, bestD := kwds.ID(0), -1.0
			_ = best
			for _, id := range inv.Postings(kw) {
				if d := p.Dist(ds.Object(id).Loc); bestD < 0 || d < bestD {
					bestD = d
				}
			}
		}
	})
}

// BenchmarkX1ExtensionCosts covers the extension cost functions (Sum,
// MinMax, SumMax) with their exact and approximate solvers on the Hotel
// profile (DESIGN.md §4.7).
func BenchmarkX1ExtensionCosts(b *testing.B) {
	e := hotelEngine()
	queries := benchQueries(e, 24, 6, 500)
	for _, cost := range []coskq.CostKind{coskq.Sum, coskq.MinMax, coskq.SumMax} {
		for _, m := range []struct {
			name   string
			method coskq.Method
		}{{"Exact", coskq.OwnerExact}, {"Appro", coskq.OwnerAppro}} {
			b.Run(fmt.Sprintf("%v/%s", cost, m.name), func(b *testing.B) {
				runAlgo(b, e, queries, cost, m.method)
			})
		}
	}
}

// BenchmarkX2TopK measures top-k retrieval against single-answer exact
// search (k=1 should be comparable to OwnerExact; cost grows mildly in k).
func BenchmarkX2TopK(b *testing.B) {
	e := hotelEngine()
	queries := benchQueries(e, 24, 6, 600)
	for _, k := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := e.TopK(q, coskq.MaxSum, k); err != nil && err != coskq.ErrInfeasible {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkX3NetworkCoSKQ measures the road-network extension: exact and
// approximate CoSKQ under shortest-path distance on a 40×40 grid.
func BenchmarkX3NetworkCoSKQ(b *testing.B) {
	g := roadnetpub.GenerateGrid(40, 40, 100, 0.2, 80, 1)
	rng := rand.New(rand.NewSource(2))
	objs := make([]roadnetpub.Object, 2000)
	for i := range objs {
		ids := make([]kwds.ID, 1+rng.Intn(3))
		for j := range ids {
			ids[j] = kwds.ID(rng.Intn(40))
		}
		objs[i] = roadnetpub.Object{
			Node:     roadnetpub.NodeID(rng.Intn(g.NumNodes())),
			Keywords: kwds.NewSet(ids...),
		}
	}
	eng, err := roadnetpub.NewEngine(g, objs)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]roadnetpub.Query, 16)
	for i := range queries {
		ids := make([]kwds.ID, 4)
		for j := range ids {
			ids[j] = kwds.ID(rng.Intn(40))
		}
		queries[i] = roadnetpub.Query{
			Node:     roadnetpub.NodeID(rng.Intn(g.NumNodes())),
			Keywords: kwds.NewSet(ids...),
		}
	}
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Exact(queries[i%len(queries)], coskq.MaxSum); err != nil && err != roadnetpub.ErrInfeasible {
				b.Fatal(err)
			}
		}
	})
	b.Run("Appro", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Appro(queries[i%len(queries)], coskq.MaxSum); err != nil && err != roadnetpub.ErrInfeasible {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkX4BatchWorkers measures concurrent batch throughput at several
// worker counts (per-op = one query answered within the batch).
func BenchmarkX4BatchWorkers(b *testing.B) {
	e := hotelEngine()
	queries := benchQueries(e, 64, 6, 700)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i += len(queries) {
				e.SolveBatch(queries, coskq.MaxSum, coskq.OwnerAppro, workers)
			}
		})
	}
}

// BenchmarkX5BooleanKNN measures the boolean kNN query of the related
// literature on the Hotel profile.
func BenchmarkX5BooleanKNN(b *testing.B) {
	e := hotelEngine()
	queries := benchQueries(e, 32, 2, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		e.BooleanKNN(q.Loc, q.Keywords, 10)
	}
}
