// Package roadnet is the public surface of the road-network CoSKQ
// extension: the paper's future-work direction of running collective
// spatial keyword queries under shortest-path distance instead of
// Euclidean distance.
//
// Build a Graph (or generate a perturbed grid), attach geo-textual
// objects to nodes, and query with Exact (optimal) or Appro (ratio 2 for
// both MaxSum and Dia — the Euclidean 1.375/√3 constants rely on planar
// geometry and degrade to the generic metric bound on networks).
//
//	g := roadnet.GenerateGrid(20, 20, 100, 0.2, 40, 1)
//	objs := []roadnet.Object{{Node: 7, Keywords: kws}, ...}
//	eng, err := roadnet.NewEngine(g, objs)
//	res, err := eng.Exact(roadnet.Query{Node: 0, Keywords: need}, coskq.MaxSum)
package roadnet

import (
	"coskq/internal/netcoskq"
	iroadnet "coskq/internal/roadnet"
)

// NodeID identifies a graph node.
type NodeID = iroadnet.NodeID

// Graph is an undirected weighted road network embedded in the plane.
type Graph = iroadnet.Graph

// GenerateGrid builds a perturbed rows×cols road grid (see the internal
// package for parameter semantics). The result is connected.
func GenerateGrid(rows, cols int, spacing, jitter float64, extraEdges int, seed int64) *Graph {
	return iroadnet.GenerateGrid(rows, cols, spacing, jitter, extraEdges, seed)
}

// Object is a geo-textual object attached to a network node.
type Object = netcoskq.Object

// Query is a CoSKQ issued from a network node.
type Query = netcoskq.Query

// Result is the answer to one network CoSKQ.
type Result = netcoskq.Result

// Engine answers CoSKQ over one road network with shortest-path
// distances (per-source Dijkstra results are cached).
type Engine = netcoskq.Engine

// NewEngine builds an engine over g and objects.
func NewEngine(g *Graph, objects []Object) (*Engine, error) {
	return netcoskq.NewEngine(g, objects)
}

// ErrInfeasible is returned when some query keyword appears on no
// reachable object.
var ErrInfeasible = netcoskq.ErrInfeasible
