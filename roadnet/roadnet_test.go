package roadnet_test

import (
	"testing"

	"coskq"
	"coskq/roadnet"
)

// TestFacadeEndToEnd drives the public road-network surface.
func TestFacadeEndToEnd(t *testing.T) {
	g := roadnet.GenerateGrid(6, 6, 10, 0.1, 4, 1)
	if !g.Connected() {
		t.Fatal("grid should be connected")
	}
	objs := []roadnet.Object{
		{Node: 3, Keywords: coskq.NewKeywordSet(1)},
		{Node: 17, Keywords: coskq.NewKeywordSet(2)},
		{Node: 22, Keywords: coskq.NewKeywordSet(1, 2)},
	}
	eng, err := roadnet.NewEngine(g, objs)
	if err != nil {
		t.Fatal(err)
	}
	q := roadnet.Query{Node: 0, Keywords: coskq.NewKeywordSet(1, 2)}
	exact, err := eng.Exact(q, coskq.MaxSum)
	if err != nil {
		t.Fatal(err)
	}
	appro, err := eng.Appro(q, coskq.MaxSum)
	if err != nil {
		t.Fatal(err)
	}
	if appro.Cost < exact.Cost-1e-9 || appro.Cost > 2*exact.Cost+1e-9 {
		t.Fatalf("appro %v outside [exact, 2×exact] of %v", appro.Cost, exact.Cost)
	}
	if _, err := eng.Exact(roadnet.Query{Node: 0, Keywords: coskq.NewKeywordSet(9)}, coskq.MaxSum); err != roadnet.ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
