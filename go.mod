module coskq

go 1.22
