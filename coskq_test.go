package coskq_test

import (
	"math"
	"path/filepath"
	"testing"

	"coskq"
)

// buildCity is a small hand-authored dataset used across the public-API
// tests.
func buildCity() *coskq.Dataset {
	b := coskq.NewBuilder("city")
	b.Add(coskq.Point{X: 1, Y: 0}, "cafe")
	b.Add(coskq.Point{X: 0, Y: 2}, "museum")
	b.Add(coskq.Point{X: 2, Y: 2}, "cafe", "museum")
	b.Add(coskq.Point{X: 10, Y: 10}, "park")
	b.Add(coskq.Point{X: -1, Y: -1}, "park", "cafe")
	return b.Build()
}

func TestPublicAPIBasicQuery(t *testing.T) {
	ds := buildCity()
	eng := coskq.NewEngine(ds, 0)
	q := coskq.Query{
		Loc:      coskq.Point{X: 0, Y: 0},
		Keywords: coskq.Keywords(eng, "cafe", "museum"),
	}
	if q.Keywords.Len() != 2 {
		t.Fatalf("Keywords resolved %d of 2", q.Keywords.Len())
	}
	res, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerExact)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Feasible(q, res.Set) {
		t.Fatal("result infeasible")
	}
	// Optimum: object 2 at (2,2) alone covers both; cost = d = 2√2 ≈ 2.83.
	// Alternative {0,1}: maxD = 2, pair = √5 ≈ 2.24 → 4.24. So {2} wins.
	want := math.Hypot(2, 2)
	if math.Abs(res.Cost-want) > 1e-9 || len(res.Set) != 1 || res.Set[0] != 2 {
		t.Fatalf("MaxSum optimum = %v %v, want {2} at %v", res.Set, res.Cost, want)
	}
}

func TestPublicAPIDiaPrefersCompactPair(t *testing.T) {
	ds := buildCity()
	eng := coskq.NewEngine(ds, 0)
	q := coskq.Query{
		Loc:      coskq.Point{X: 0, Y: 0},
		Keywords: coskq.Keywords(eng, "cafe", "museum"),
	}
	res, err := eng.Solve(q, coskq.Dia, coskq.OwnerExact)
	if err != nil {
		t.Fatal(err)
	}
	// Dia({0,1}) = max(2, √5) = √5 ≈ 2.236 < Dia({2}) = 2√2 ≈ 2.83.
	if math.Abs(res.Cost-math.Sqrt(5)) > 1e-9 {
		t.Fatalf("Dia optimum cost = %v, want √5", res.Cost)
	}
}

func TestPublicAPIUnknownKeywordInfeasible(t *testing.T) {
	ds := buildCity()
	eng := coskq.NewEngine(ds, 0)
	// Keywords drops unknown words; an explicitly-interned missing word
	// makes the query infeasible.
	if got := coskq.Keywords(eng, "cafe", "zeppelin"); got.Len() != 1 {
		t.Fatalf("unknown word should be dropped, got %v", got)
	}
	if _, ok := coskq.LookupKeyword(ds, "zeppelin"); ok {
		t.Fatal("zeppelin should not resolve")
	}
	q := coskq.Query{Loc: coskq.Point{}, Keywords: coskq.NewKeywordSet(9999)}
	if _, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerExact); err != coskq.ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPublicAPIGenerateAndQueryPipeline(t *testing.T) {
	ds := coskq.Generate(coskq.GenConfig{
		Name: "pipeline", NumObjects: 5000, VocabSize: 200,
		AvgKeywords: 4, Clusters: 20, Seed: 9,
	})
	eng := coskq.NewEngine(ds, 0)
	gen := coskq.NewQueryGen(eng, 0, 40, 17)

	solved := 0
	for i := 0; i < 10; i++ {
		loc, kws := gen.Next(4)
		q := coskq.Query{Loc: loc, Keywords: kws}
		exact, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerExact)
		if err == coskq.ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		appro, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerAppro)
		if err != nil {
			t.Fatal(err)
		}
		if appro.Cost < exact.Cost-1e-9 || appro.Cost > 1.375*exact.Cost+1e-9 {
			t.Fatalf("appro cost %v outside [exact, 1.375×exact] = [%v, %v]",
				appro.Cost, exact.Cost, 1.375*exact.Cost)
		}
		solved++
	}
	if solved == 0 {
		t.Fatal("no query solved")
	}
}

func TestPublicAPISaveLoadRoundTrip(t *testing.T) {
	ds := coskq.Generate(coskq.GenConfig{
		Name: "rt", NumObjects: 500, VocabSize: 50, AvgKeywords: 3, Seed: 4,
	})
	path := filepath.Join(t.TempDir(), "rt.gob")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := coskq.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.Stats().NumWords != ds.Stats().NumWords {
		t.Fatal("round trip changed the dataset")
	}
	// The loaded dataset answers queries identically.
	e1, e2 := coskq.NewEngine(ds, 0), coskq.NewEngine(got, 0)
	g := coskq.NewQueryGen(e1, 0, 40, 5)
	for i := 0; i < 5; i++ {
		loc, kws := g.Next(3)
		q := coskq.Query{Loc: loc, Keywords: kws}
		r1, err1 := e1.Solve(q, coskq.MaxSum, coskq.OwnerExact)
		r2, err2 := e2.Solve(q, coskq.MaxSum, coskq.OwnerExact)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("feasibility differs after round trip")
		}
		if err1 == nil && math.Abs(r1.Cost-r2.Cost) > 1e-12 {
			t.Fatalf("cost differs after round trip: %v vs %v", r1.Cost, r2.Cost)
		}
	}
}

func TestPublicAPIAugmentations(t *testing.T) {
	base := coskq.Generate(coskq.GenConfig{
		Name: "aug", NumObjects: 1000, VocabSize: 100, AvgKeywords: 4, Seed: 6,
	})
	dense := coskq.AugmentKeywords(base, 8, 1)
	if dense.Stats().AvgKeywords < 8 {
		t.Fatalf("AugmentKeywords avg = %v", dense.Stats().AvgKeywords)
	}
	big := coskq.AugmentToN(base, 3000, 2)
	if big.Len() != 3000 {
		t.Fatalf("AugmentToN len = %d", big.Len())
	}
}

func TestPublicAPIAllMethodsAgreeOnFeasibility(t *testing.T) {
	ds := coskq.Generate(coskq.GenConfig{
		Name: "agree", NumObjects: 3000, VocabSize: 150, AvgKeywords: 4, Seed: 8,
	})
	eng := coskq.NewEngine(ds, 0)
	gen := coskq.NewQueryGen(eng, 0, 40, 31)
	loc, kws := gen.Next(4)
	q := coskq.Query{Loc: loc, Keywords: kws}

	methods := []coskq.Method{
		coskq.OwnerExact, coskq.OwnerAppro,
		coskq.CaoExact, coskq.CaoAppro1, coskq.CaoAppro2,
	}
	for _, cost := range []coskq.CostKind{coskq.MaxSum, coskq.Dia} {
		var exactCost float64
		for i, m := range methods {
			res, err := eng.Solve(q, cost, m)
			if err != nil {
				t.Fatalf("%v/%v: %v", cost, m, err)
			}
			if !eng.Feasible(q, res.Set) {
				t.Fatalf("%v/%v infeasible", cost, m)
			}
			if i == 0 {
				exactCost = res.Cost
			} else if res.Cost < exactCost-1e-9 {
				t.Fatalf("%v/%v beat the exact algorithm: %v < %v", cost, m, res.Cost, exactCost)
			}
		}
	}
}

func TestPublicAPIStringers(t *testing.T) {
	if coskq.MaxSum.String() != "MaxSum" || coskq.Dia.String() != "Dia" {
		t.Fatal("CostKind stringer broken")
	}
	if coskq.OwnerExact.String() == "" || coskq.CaoAppro2.String() == "" {
		t.Fatal("Method stringer broken")
	}
}

func TestPublicAPIBooleanKNN(t *testing.T) {
	ds := buildCity()
	eng := coskq.NewEngine(ds, 0)
	// Only object 2 covers both cafe and museum.
	got := eng.BooleanKNN(coskq.Point{X: 0, Y: 0}, coskq.Keywords(eng, "cafe", "museum"), 3)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("BooleanKNN = %v, want [2]", got)
	}
	// Three objects carry "cafe"; nearest-first ordering.
	cafes := eng.BooleanKNN(coskq.Point{X: 0, Y: 0}, coskq.Keywords(eng, "cafe"), 2)
	if len(cafes) != 2 {
		t.Fatalf("cafes = %v", cafes)
	}
	d0 := ds.Object(cafes[0]).Loc.Dist(coskq.Point{})
	d1 := ds.Object(cafes[1]).Loc.Dist(coskq.Point{})
	if d0 > d1 {
		t.Fatal("BooleanKNN not ascending")
	}
}
