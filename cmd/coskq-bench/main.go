// Command coskq-bench regenerates the paper's evaluation: every table and
// figure has an experiment id (T1, E1–E8, X1, X2; see DESIGN.md §5) whose rows are
// printed in the paper's layout (mean running time per algorithm plus
// avg/max approximation ratios).
//
// Usage:
//
//	coskq-bench [-exp all] [-queries 100] [-seed 1] [-scale 0.02] [-full] [-budget 20000000]
//
// -full selects the paper-size scalability sweep (2M–10M objects); the
// default sweep (50k–800k) fits a laptop. Exact-search executions that
// exceed the node budget are reported as DNF, mirroring the paper's
// "did not finish" entries for the Cao-Exact baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"coskq/internal/core"
	"coskq/internal/experiments"
	"coskq/internal/trace"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id: T1, E1..E8, X1, X2 or all")
		queries     = flag.Int("queries", 100, "queries per parameter setting (paper: 500)")
		seed        = flag.Int64("seed", 1, "workload seed")
		scale       = flag.Float64("scale", 0.02, "GN/Web profile scale factor in (0,1]")
		full        = flag.Bool("full", false, "paper-size scalability sweep (2M-10M objects)")
		budget      = flag.Int("budget", 20_000_000, "exact-search node budget per query (DNF beyond)")
		showMetrics = flag.Bool("metrics", false, "print the cumulative query/latency/effort metrics (the same exposition coskq-server serves on /metrics) after the run")
		showTrace   = flag.Bool("trace", false, "trace every query and print the slowest executions' trace trees after the run (adds a few percent of overhead)")
		workers     = flag.Int("workers", 0, "worker goroutines per exact search (0 = GOMAXPROCS, 1 = serial)")
		nnCache     = flag.Int("nn-cache", 0, "engine keyword-NN cache capacity in entries, shared across queries (0 = disabled)")
	)
	flag.Parse()

	opt := experiments.Options{
		Queries:    *queries,
		Seed:       *seed,
		Scale:      *scale,
		Full:       *full,
		NodeBudget: *budget,
		Workers:    *workers,
		NNCache:    *nnCache,
		Out:        os.Stdout,
	}
	if *showMetrics {
		opt.Metrics = core.NewEngineMetrics(nil)
	}
	if *showTrace {
		opt.SlowLog = trace.NewSlowLog(3)
	}
	if err := experiments.Run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if opt.Metrics != nil {
		fmt.Println("\n== metrics: cumulative counters and histograms over the whole run ==")
		opt.Metrics.WriteText(os.Stdout)
	}
	if opt.SlowLog != nil {
		fmt.Println("\n== slowest traced queries ==")
		for _, e := range opt.SlowLog.Snapshot() {
			fmt.Printf("\n%s  (%.3fms", e.Query, e.ElapsedMs)
			if e.Err != "" {
				fmt.Printf(", error: %s", e.Err)
			}
			fmt.Println(")")
			e.Trace.WriteTree(os.Stdout)
		}
	}
}
