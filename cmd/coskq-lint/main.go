// Command coskq-lint is the repository's static-analysis suite, packaged
// as a go vet tool. It machine-checks the engine's safety invariants —
// budget-panic containment, trace-span balance, cancellation polling in
// search loops, centralized distance math, and structured logging in the
// serving path. Run it over the whole repository with:
//
//	go build -o bin/coskq-lint ./cmd/coskq-lint
//	go vet -vettool=$PWD/bin/coskq-lint ./...
//
// Each analyzer can be toggled or inspected individually via the
// standard unitchecker flags (coskq-lint help, -budgetrecover=false, ...).
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"coskq/internal/analysis/coskqlint"
)

func main() {
	unitchecker.Main(coskqlint.Analyzers()...)
}
