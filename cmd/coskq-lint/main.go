// Command coskq-lint is the repository's static-analysis suite, packaged
// as a go vet tool. It machine-checks ten safety invariants. The first
// generation guards the engine: budget-panic containment
// (budgetrecover), trace-span balance (spanend), cancellation polling in
// search loops (ctxpoll), centralized distance math (geodist), and
// structured logging in the serving path (slogonly). The second
// generation guards the distributed tier: deterministic output from map
// iteration (detmaps), typed cross-shard errors (errtyped), bounded
// metric label vocabularies (metriclabel), balanced sync.Pool usage
// (poolscratch), and deadline-bearing outbound RPCs (rpcdeadline). Run
// it over the whole repository with:
//
//	go build -o bin/coskq-lint ./cmd/coskq-lint
//	go vet -vettool=$PWD/bin/coskq-lint ./...
//
// Each analyzer can be toggled or inspected individually via the
// standard unitchecker flags (coskq-lint help, -budgetrecover=false, ...).
//
// A diagnostic may be suppressed only with a justified comment of the
// form
//
//	//coskq:nolint(analyzer) reason the invariant holds anyway
//
// on the flagged line or the line above it. A suppression that names an
// analyzer but gives no reason is itself reported.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"coskq/internal/analysis/coskqlint"
)

func main() {
	unitchecker.Main(coskqlint.Analyzers()...)
}
