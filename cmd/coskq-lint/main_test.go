package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the coskq-lint binary into a temp dir and returns
// its path along with the repository root.
func buildLint(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "coskq-lint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/coskq-lint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building coskq-lint: %v\n%s", err, out)
	}
	return bin, root
}

// TestLintCleanOnRepo is the gate the CI lint job enforces: the full
// analyzer suite must pass over the repository itself.
func TestLintCleanOnRepo(t *testing.T) {
	bin, root := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=coskq-lint ./... failed: %v\n%s", err, out)
	}
}

// TestLintCatchesViolation verifies the tool actually fires: a module
// with a package whose import path ends in "server" that logs through
// the legacy log package must fail vet with a slogonly diagnostic.
func TestLintCatchesViolation(t *testing.T) {
	bin, _ := buildLint(t)
	mod := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module smoketest\n\ngo 1.22\n")
	write("server/server.go", `package server

import "log"

func Warn(msg string) { log.Println(msg) }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a package that logs via the legacy log package; want a slogonly failure\n%s", out)
	}
	if !strings.Contains(string(out), "log/slog") {
		t.Fatalf("vet failed but without the slogonly diagnostic:\n%s", out)
	}
}

// writeModule lays out a throwaway module for vet smoke tests and
// returns a helper that runs the suite over it.
func writeModule(t *testing.T, bin string, files map[string]string) (run func() (string, error)) {
	t.Helper()
	mod := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return func() (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
}

// TestLintDetmapsTestMode verifies the detmaps test-mode rule fires on
// _test.go files: a test table expressed as a map literal is rejected
// because a failure message depends on which case the runtime visits
// first. The offline analyzertest harness skips _test.go fixtures, so
// this behavior is proven here, through real go vet.
func TestLintDetmapsTestMode(t *testing.T) {
	bin, _ := buildLint(t)
	run := writeModule(t, bin, map[string]string{
		"go.mod": "module smoketest\n\ngo 1.22\n",
		"shard/shard.go": `package shard

func Route(n int) int { return n % 4 }
`,
		"shard/shard_test.go": `package shard

import "testing"

func TestRoute(t *testing.T) {
	for in, want := range map[int]int{1: 1, 5: 1, 8: 0} {
		if got := Route(in); got != want {
			t.Fatalf("Route(%d) = %d, want %d", in, got, want)
		}
	}
}
`,
	})
	out, err := run()
	if err == nil {
		t.Fatalf("go vet passed over a map-literal test table; want a detmaps failure\n%s", out)
	}
	if !strings.Contains(out, "map literal of cases") {
		t.Fatalf("vet failed but without the detmaps test-mode diagnostic:\n%s", out)
	}
}

// TestLintNolintRequiresReason verifies the suppression policy: a
// //coskq:nolint(analyzer) with no reason suppresses nothing and is
// itself reported, while a justified one silences the diagnostic.
func TestLintNolintRequiresReason(t *testing.T) {
	bin, _ := buildLint(t)

	src := func(nolint string) string {
		return `package server

import "log"

func Warn(msg string) {
	` + nolint + `
	log.Println(msg)
}
`
	}

	run := writeModule(t, bin, map[string]string{
		"go.mod":           "module smoketest\n\ngo 1.22\n",
		"server/server.go": src("//coskq:nolint(slogonly)"),
	})
	out, err := run()
	if err == nil {
		t.Fatalf("go vet passed with a reason-less nolint; want it reported\n%s", out)
	}
	if !strings.Contains(out, "without a reason") {
		t.Fatalf("vet failed but without the missing-reason diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "log/slog") {
		t.Fatalf("a reason-less nolint must not suppress the underlying diagnostic:\n%s", out)
	}

	run = writeModule(t, bin, map[string]string{
		"go.mod":           "module smoketest\n\ngo 1.22\n",
		"server/server.go": src("//coskq:nolint(slogonly) startup banner predates the logger"),
	})
	if out, err := run(); err != nil {
		t.Fatalf("justified nolint should suppress the diagnostic, got: %v\n%s", err, out)
	}
}
