package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the coskq-lint binary into a temp dir and returns
// its path along with the repository root.
func buildLint(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "coskq-lint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/coskq-lint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building coskq-lint: %v\n%s", err, out)
	}
	return bin, root
}

// TestLintCleanOnRepo is the gate the CI lint job enforces: the full
// analyzer suite must pass over the repository itself.
func TestLintCleanOnRepo(t *testing.T) {
	bin, root := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=coskq-lint ./... failed: %v\n%s", err, out)
	}
}

// TestLintCatchesViolation verifies the tool actually fires: a module
// with a package whose import path ends in "server" that logs through
// the legacy log package must fail vet with a slogonly diagnostic.
func TestLintCatchesViolation(t *testing.T) {
	bin, _ := buildLint(t)
	mod := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module smoketest\n\ngo 1.22\n")
	write("server/server.go", `package server

import "log"

func Warn(msg string) { log.Println(msg) }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a package that logs via the legacy log package; want a slogonly failure\n%s", out)
	}
	if !strings.Contains(string(out), "log/slog") {
		t.Fatalf("vet failed but without the slogonly diagnostic:\n%s", out)
	}
}
