package main

import (
	"testing"

	"coskq"
)

func TestParseCost(t *testing.T) {
	cases := map[string]coskq.CostKind{
		"maxsum": coskq.MaxSum, "MaxSum": coskq.MaxSum, "MAXSUM": coskq.MaxSum,
		"dia": coskq.Dia, "sum": coskq.Sum, "minmax": coskq.MinMax,
	}
	for in, want := range cases {
		got, err := parseCost(in)
		if err != nil || got != want {
			t.Errorf("parseCost(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseCost("bogus"); err == nil {
		t.Error("parseCost should reject unknown costs")
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]coskq.Method{
		"exact":       coskq.OwnerExact,
		"owner-exact": coskq.OwnerExact,
		"appro":       coskq.OwnerAppro,
		"cao-exact":   coskq.CaoExact,
		"cao-appro1":  coskq.CaoAppro1,
		"cao-appro2":  coskq.CaoAppro2,
		"brute":       coskq.Brute,
		"greedy-sum":  coskq.GreedySum,
	}
	for in, want := range cases {
		got, err := parseMethod(in)
		if err != nil || got != want {
			t.Errorf("parseMethod(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Error("parseMethod should reject unknown methods")
	}
}
