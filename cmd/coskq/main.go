// Command coskq answers a single collective spatial keyword query over a
// dataset file (see coskq-datagen), printing the chosen objects, the cost
// and search statistics for the selected cost function and algorithm.
//
// Usage:
//
//	coskq -data hotel.gob -x 500 -y 500 -kw w000001,w000004,w000010
//	coskq -data hotel.gob -x 500 -y 500 -kw w000001,w000004 -cost dia -method appro
//	coskq -data hotel.gob -x 500 -y 500 -k 5 -seed 7          # random query keywords
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"coskq"
	"coskq/internal/stats"
	"coskq/internal/trace"
	"coskq/internal/viz"
)

func parseCost(s string) (coskq.CostKind, error) {
	switch strings.ToLower(s) {
	case "maxsum":
		return coskq.MaxSum, nil
	case "dia":
		return coskq.Dia, nil
	case "sum":
		return coskq.Sum, nil
	case "minmax":
		return coskq.MinMax, nil
	}
	return 0, fmt.Errorf("unknown cost %q (want maxsum, dia, sum or minmax)", s)
}

func parseMethod(s string) (coskq.Method, error) {
	switch strings.ToLower(s) {
	case "exact", "owner-exact":
		return coskq.OwnerExact, nil
	case "appro", "owner-appro":
		return coskq.OwnerAppro, nil
	case "cao-exact":
		return coskq.CaoExact, nil
	case "cao-appro1":
		return coskq.CaoAppro1, nil
	case "cao-appro2":
		return coskq.CaoAppro2, nil
	case "brute":
		return coskq.Brute, nil
	case "greedy-sum":
		return coskq.GreedySum, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func main() {
	var (
		data    = flag.String("data", "", "dataset file written by coskq-datagen (required)")
		x       = flag.Float64("x", 0, "query location x")
		y       = flag.Float64("y", 0, "query location y")
		kwList  = flag.String("kw", "", "comma-separated query keywords")
		k       = flag.Int("k", 0, "draw this many random query keywords instead of -kw")
		seed    = flag.Int64("seed", 1, "seed for -k random keywords")
		costStr = flag.String("cost", "maxsum", "cost function: maxsum, dia, sum, minmax")
		method  = flag.String("method", "exact", "algorithm: exact, appro, cao-exact, cao-appro1, cao-appro2, brute, greedy-sum")
		fanout  = flag.Int("fanout", 0, "IR-tree fanout (0 = default)")
		svgOut  = flag.String("svg", "", "also render the answer to this SVG file")
		explain = flag.Bool("explain", false, "print the per-phase execution trace after the answer")
		workers = flag.Int("workers", 0, "worker goroutines per exact search (0 = GOMAXPROCS, 1 = serial)")
		budget  = flag.Int("budget", 0, "exact-search node budget (0 = unlimited)")
		degrade = flag.String("degrade", "fail", "when -budget trips: fail, incumbent (best set so far), or fallback (approximate answer)")
		nnCache = flag.Int("nn-cache", 0, "engine keyword-NN cache capacity in entries (0 = disabled)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "coskq: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "coskq:", err)
		os.Exit(1)
	}

	cost, errC := parseCost(*costStr)
	if errC != nil {
		die(errC)
	}
	m, errM := parseMethod(*method)
	if errM != nil {
		die(errM)
	}

	var ds *coskq.Dataset
	var err error
	if strings.HasSuffix(*data, ".csv") {
		ds, err = coskq.LoadCSVDataset(*data)
	} else {
		ds, err = coskq.LoadDataset(*data)
	}
	if err != nil {
		die(err)
	}
	policy, okP := coskq.ParseDegradePolicy(*degrade)
	if !okP {
		die(fmt.Errorf("unknown -degrade policy %q (use fail, incumbent, or fallback)", *degrade))
	}

	fmt.Printf("dataset %s: %s\n", ds.Name, ds.Stats())
	eng := coskq.NewEngine(ds, *fanout)
	eng.Parallelism = *workers
	eng.NodeBudget = *budget
	eng.Degrade = policy
	eng.EnableNNCache(*nnCache)

	var keywords coskq.KeywordSet
	switch {
	case *kwList != "":
		var missing []string
		for _, w := range strings.Split(*kwList, ",") {
			w = strings.TrimSpace(w)
			if id, ok := coskq.LookupKeyword(ds, w); ok {
				keywords = keywords.Union(coskq.NewKeywordSet(id))
			} else {
				missing = append(missing, w)
			}
		}
		if len(missing) > 0 {
			die(fmt.Errorf("keywords not in the dataset vocabulary: %s", strings.Join(missing, ", ")))
		}
	case *k > 0:
		g := coskq.NewQueryGen(eng, 0, 40, *seed)
		_, keywords = g.Next(*k)
	default:
		die(fmt.Errorf("provide query keywords with -kw or -k"))
	}

	q := coskq.Query{Loc: coskq.Point{X: *x, Y: *y}, Keywords: keywords}
	fmt.Printf("query: loc=%v keywords=%s cost=%v method=%v\n", q.Loc, keywords.Format(ds.Vocab), cost, m)

	ctx := context.Background()
	var tr *trace.Trace
	if *explain {
		tr = trace.New("query")
		ctx = trace.NewContext(ctx, tr)
	}
	res, err := eng.SolveCtx(ctx, q, cost, m)
	if err != nil {
		die(err)
	}
	if res.Degraded {
		fmt.Printf("DEGRADED answer (%s): best feasible set found before the search was cut short\n",
			res.Stats.DegradeReason)
	}
	fmt.Printf("cost: %.6g   (elapsed %s, owners tried %d, sets evaluated %d, nodes expanded %d)\n",
		res.Cost, stats.FmtDuration(res.Stats.Elapsed),
		res.Stats.OwnersTried, res.Stats.SetsEvaluated, res.Stats.NodesExpanded)
	for _, id := range res.Set {
		o := ds.Object(id)
		fmt.Printf("  object %-8d at %-24v d(q)=%-10.5g %s\n",
			o.ID, o.Loc, q.Loc.Dist(o.Loc), o.Keywords.Format(ds.Vocab))
	}
	if *explain {
		tr.Finish()
		fmt.Println("\ntrace:")
		tr.Export().WriteTree(os.Stdout)
	}

	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			die(err)
		}
		if err := viz.Render(f, eng, q, res, viz.Options{}); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("rendered %s\n", *svgOut)
	}
}
