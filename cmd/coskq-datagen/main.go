// Command coskq-datagen generates a synthetic geo-textual dataset from one
// of the calibrated profiles (or custom parameters) and writes it to a
// file loadable with coskq.LoadDataset / the coskq CLI.
//
// Usage:
//
//	coskq-datagen -out hotel.gob -profile hotel
//	coskq-datagen -out gn.gob -profile gn -scale 0.05
//	coskq-datagen -out custom.gob -n 100000 -vocab 5000 -avgkw 6 -clusters 40
//	coskq-datagen -out big.gob -profile gn -scale 0.02 -augment-n 500000
//	coskq-datagen -out dense.gob -profile hotel -augment-kw 16
package main

import (
	"flag"
	"fmt"
	"os"

	"coskq"
)

func main() {
	var (
		out       = flag.String("out", "", "output file (required)")
		profile   = flag.String("profile", "", "profile: hotel, gn or web (empty = custom)")
		scale     = flag.Float64("scale", 1, "profile scale factor in (0,1] (gn/web)")
		seed      = flag.Int64("seed", 1, "generation seed")
		n         = flag.Int("n", 10000, "custom: number of objects")
		vocab     = flag.Int("vocab", 1000, "custom: vocabulary size")
		avgKw     = flag.Float64("avgkw", 4, "custom: average keywords per object")
		clusters  = flag.Int("clusters", 20, "custom: spatial clusters (0 = uniform)")
		topics    = flag.Int("topics", 0, "custom: vocabulary topic blocks for realistic keyword co-occurrence (0 = off)")
		augmentN  = flag.Int("augment-n", 0, "grow the dataset to this many objects (paper's scalability construction)")
		augmentKw = flag.Float64("augment-kw", 0, "raise the average keywords per object to this value")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "coskq-datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var cfg coskq.GenConfig
	switch *profile {
	case "hotel":
		cfg = coskq.ProfileHotel(*seed)
	case "gn":
		cfg = coskq.ProfileGN(*seed, *scale)
	case "web":
		cfg = coskq.ProfileWeb(*seed, *scale)
	case "":
		cfg = coskq.GenConfig{
			Name: "custom", NumObjects: *n, VocabSize: *vocab,
			AvgKeywords: *avgKw, Clusters: *clusters, Topics: *topics, Seed: *seed,
		}
	default:
		fmt.Fprintf(os.Stderr, "coskq-datagen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	ds := coskq.Generate(cfg)
	if *augmentKw > 0 {
		ds = coskq.AugmentKeywords(ds, *augmentKw, *seed+1)
	}
	if *augmentN > ds.Len() {
		ds = coskq.AugmentToN(ds, *augmentN, *seed+2)
	}

	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "coskq-datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %s\n", *out, ds.Stats())
}
