// Command coskq-server serves collective spatial keyword queries over
// HTTP: load a dataset (gob or CSV), build the engine once, and answer
// JSON query requests. A minimal deployment surface for the library,
// with the production robustness layer wired in: request logging, panic
// recovery, a per-request timeout that cancels in-flight searches, and
// metrics exposition.
//
// Usage:
//
//	coskq-server -data hotel.gob -addr :8080 [-timeout 30s] [-budget 0]
//	             [-degrade incumbent] [-max-inflight 64 -max-queue 128 -queue-timeout 2s]
//	             [-budget-per-second 2e6] [-pprof]
//
// Live-index mode (see DESIGN.md §16):
//
//	coskq-server -data hotel.gob -live [-ingest-backlog 4096] [-compact-frac 0.25]
//	    serves the same read surface over an epoch store, plus the
//	    mutation surface: POST /objects applies a JSON batch of
//	    insert/delete/edit ops (idempotent under a client "seq" token)
//	    and POST /objects/stream ingests NDJSON, one op per line.
//	    Reads pin one index generation end-to-end and never block on
//	    writes; writes shed with 429 when the apply backlog is full.
//
// Scatter-gather modes (see DESIGN.md §12):
//
//	coskq-server -data hotel.gob -shards 4 [-partition grid|subtree]
//	    partitions the dataset into in-process shards and answers /query
//	    by scatter-gather across per-shard engines.
//	coskq-server -peers http://h1:8080,http://h2:8080 [-shard-timeout 5s]
//	    serves as a coordinator fanning /query out to peer shard servers
//	    (every coskq-server exposes the /shard/* data plane); -data is
//	    not needed.
//
// Distributed observability (DESIGN.md §13): the coordinator propagates
// its request id and a W3C-style traceparent on every shard call, so
// /query?explain=1 returns one stitched trace covering coordinator and
// shards, and GET /metrics?federate=1 on the coordinator merges every
// peer's /metrics into one page with per-shard labels
// ([-federate-timeout 2s] bounds the peer fan-out).
//
// Endpoints:
//
//	GET /stats
//	    → {"name":..., "objects":..., "uniqueWords":..., "avgKeywords":...}
//	GET /query?x=500&y=500&kw=w000001,w000004[&cost=maxsum][&method=exact][&k=3]
//	    → {"cost":..., "elapsedMs":..., "objects":[{"id":..., "x":..., "y":..., "keywords":[...]}]}
//	    kw is a comma-separated keyword list; k instead of kw asks the
//	    server to draw k random query keywords (for demos).
//	GET /topk?x=500&y=500&kw=...&n=5[&cost=maxsum]
//	    → {"results":[{...}, ...]} — the n cheapest irredundant sets.
//	GET /healthz
//	    → {"status":"ok", ...} liveness probe.
//	GET /metrics
//	    → text exposition of query counters and latency/effort histograms.
//	GET /debug/pprof/ (only with -pprof)
//	    → net/http/pprof profiles.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"coskq"
	"coskq/internal/client"
	"coskq/internal/core"
	"coskq/internal/epoch"
	"coskq/internal/metrics"
	"coskq/internal/server"
	"coskq/internal/shard"
)

func main() {
	var (
		data      = flag.String("data", "", "dataset file, .gob or .csv (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline; in-flight searches are cancelled at the deadline (0 disables)")
		budget    = flag.Int("budget", 0, "exact-search node budget per query, over-budget queries get 503 (0 = unlimited)")
		slowlog   = flag.Int("slowlog", 0, "slow-query log capacity for /debug/slowlog (0 = default, negative disables)")
		pprofFlag = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		workers   = flag.Int("workers", 0, "worker goroutines per exact search (0 = GOMAXPROCS, 1 = serial)")
		degrade   = flag.String("degrade", "fail", "anytime-answer policy when budget/deadline trips a search: fail, incumbent, or fallback")
		inflight  = flag.Int("max-inflight", 0, "max concurrently solving /query+/topk requests, excess queues then sheds with 429 (0 = unlimited)")
		maxQueue  = flag.Int("max-queue", 0, "admission wait-queue depth beyond -max-inflight (0 = shed immediately when saturated)")
		queueWait = flag.Duration("queue-timeout", 0, "max time a request waits in the admission queue before a 429 (0 = bounded only by -timeout)")
		budgetPS  = flag.Float64("budget-per-second", 0, "derive each request's node budget as rate x seconds left to its deadline (0 = disabled)")
		shards    = flag.Int("shards", 1, "partition -data into N in-process shards and answer /query by scatter-gather (1 = single engine)")
		partition = flag.String("partition", "grid", "shard partitioning strategy: grid or subtree")
		peers     = flag.String("peers", "", "comma-separated peer shard server URLs; serve as a scatter-gather coordinator (no -data needed)")
		shardTO   = flag.Duration("shard-timeout", 0, "per-shard call deadline in scatter-gather modes (0 = bounded by -timeout)")
		fedTO     = flag.Duration("federate-timeout", 0, "peer fan-out deadline for coordinator /metrics?federate=1 scrapes (0 = 2s default)")
		nnCache   = flag.Int("nn-cache", 0, "engine keyword-NN cache capacity in entries, shared across queries (single-engine mode; 0 = disabled)")
		live      = flag.Bool("live", false, "serve a mutable live index: mount POST /objects and /objects/stream over an epoch store (single-engine mode)")
		backlog   = flag.Int("ingest-backlog", 0, "live mode: max pending mutation ops before writes shed with 429 (0 = 4096)")
		compact   = flag.Float64("compact-frac", 0, "live mode: tombstone fraction triggering compaction (0 = 0.25, negative disables)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	policy, ok := core.ParseDegradePolicy(*degrade)
	if !ok {
		fmt.Fprintf(os.Stderr, "coskq-server: unknown -degrade policy %q (use fail, incumbent, or fallback)\n", *degrade)
		os.Exit(2)
	}
	if *data == "" && *peers == "" {
		fmt.Fprintln(os.Stderr, "coskq-server: -data is required (or -peers for coordinator mode)")
		flag.Usage()
		os.Exit(2)
	}
	reg := metrics.NewRegistry()
	opts := server.Options{
		Timeout:             *timeout,
		Logger:              logger,
		Registry:            reg,
		SlowLog:             *slowlog,
		MaxInFlight:         *inflight,
		MaxQueue:            *maxQueue,
		QueueTimeout:        *queueWait,
		Degrade:             policy,
		NodeBudgetPerSecond: *budgetPS,
		FederateTimeout:     *fedTO,
	}

	var handler http.Handler
	closeStore := func() {}
	switch {
	case *peers != "":
		var backends []shard.Backend
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				backends = append(backends, shard.NewHTTPBackend(&client.Client{Base: p}))
			}
		}
		if len(backends) == 0 {
			fmt.Fprintln(os.Stderr, "coskq-server: -peers lists no usable URLs")
			os.Exit(2)
		}
		rt := &shard.Router{
			Backends:     backends,
			Workers:      *workers,
			NodeBudget:   *budget,
			ShardTimeout: *shardTO,
		}
		handler = server.NewScatterGather(rt, opts)
		logger.Info("scatter-gather coordinator", "peers", len(backends), "shard_timeout", *shardTO)

	case *shards > 1:
		ds := loadData(logger, *data)
		part, ok := shard.PartitionerByName(*partition)
		if !ok {
			fmt.Fprintf(os.Stderr, "coskq-server: unknown -partition strategy %q (use grid or subtree)\n", *partition)
			os.Exit(2)
		}
		rt, err := shard.NewLocalRouter(ds, *shards, part, 0)
		if err != nil {
			logger.Error("partitioning dataset", "err", err)
			os.Exit(1)
		}
		rt.Workers = *workers
		rt.NodeBudget = *budget
		rt.ShardTimeout = *shardTO
		handler = server.NewScatterGather(rt, opts)
		logger.Info("in-process scatter-gather", "shards", *shards, "partition", part.Name())

	default:
		ds := loadData(logger, *data)
		eng := coskq.NewEngine(ds, 0)
		eng.NodeBudget = *budget
		eng.Parallelism = *workers
		eng.Metrics = core.NewEngineMetrics(reg)
		eng.EnableNNCache(*nnCache) // after Metrics: hit/miss counters register on reg
		if *live {
			st := epoch.New(eng, epoch.Options{MaxBacklog: *backlog, CompactFrac: *compact})
			closeStore = st.Close
			handler = server.NewLive(st, opts)
			logger.Info("live index enabled", "backlog", *backlog, "compact_frac", *compact)
		} else {
			handler = server.NewWith(eng, opts)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *pprofFlag {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("listening", "addr", *addr, "timeout", *timeout, "budget", *budget,
		"degrade", *degrade, "max_inflight", *inflight, "max_queue", *maxQueue)
	err := srv.ListenAndServe()
	// Stop the applier before exit so in-flight deltas finish cleanly.
	closeStore()
	if err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// loadData loads the dataset or exits.
func loadData(logger *slog.Logger, path string) *coskq.Dataset {
	var (
		ds  *coskq.Dataset
		err error
	)
	if strings.HasSuffix(path, ".csv") {
		ds, err = coskq.LoadCSVDataset(path)
	} else {
		ds, err = coskq.LoadDataset(path)
	}
	if err != nil {
		logger.Error("loading dataset", "path", path, "err", err)
		os.Exit(1)
	}
	logger.Info("dataset loaded", "name", ds.Name, "stats", ds.Stats().String())
	return ds
}
