// Command coskq-server serves collective spatial keyword queries over
// HTTP: load a dataset (gob or CSV), build the engine once, and answer
// JSON query requests. A minimal deployment surface for the library.
//
// Usage:
//
//	coskq-server -data hotel.gob -addr :8080
//
// Endpoints:
//
//	GET /stats
//	    → {"name":..., "objects":..., "uniqueWords":..., "avgKeywords":...}
//	GET /query?x=500&y=500&kw=w000001,w000004[&cost=maxsum][&method=exact][&k=3]
//	    → {"cost":..., "elapsedMs":..., "objects":[{"id":..., "x":..., "y":..., "keywords":[...]}]}
//	    kw is a comma-separated keyword list; k instead of kw asks the
//	    server to draw k random query keywords (for demos).
//	GET /topk?x=500&y=500&kw=...&n=5[&cost=maxsum]
//	    → {"results":[{...}, ...]} — the n cheapest irredundant sets.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"coskq"
	"coskq/internal/server"
)

func main() {
	var (
		data = flag.String("data", "", "dataset file, .gob or .csv (required)")
		addr = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "coskq-server: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		ds  *coskq.Dataset
		err error
	)
	if strings.HasSuffix(*data, ".csv") {
		ds, err = coskq.LoadCSVDataset(*data)
	} else {
		ds, err = coskq.LoadDataset(*data)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset %s: %s", ds.Name, ds.Stats())

	eng := coskq.NewEngine(ds, 0)
	log.Printf("indexes built; listening on %s", *addr)
	if err := http.ListenAndServe(*addr, server.New(eng)); err != nil {
		log.Fatal(err)
	}
}
