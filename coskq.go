// Package coskq is a library for collective spatial keyword queries
// (CoSKQ), implementing the distance owner-driven approach of
//
//	Cheng Long, Raymond Chi-Wing Wong, Ke Wang, Ada Wai-Chee Fu.
//	"Collective spatial keyword queries: a distance owner-driven approach."
//	SIGMOD 2013.
//
// A CoSKQ takes a query location and a set of query keywords over a
// database of geo-textual objects and returns a set of objects that
// together cover the keywords while minimizing a spatial cost function.
// The library provides the paper's exact and approximate algorithms for
// the MaxSum and Dia cost functions, the Cao et al. (SIGMOD 2011)
// baselines, the IR-tree index they run on, workload generators calibrated
// to the paper's datasets, and the full experiment harness that reproduces
// the paper's evaluation.
//
// # Quick start
//
//	b := coskq.NewBuilder("pois")
//	b.Add(coskq.Point{X: 1, Y: 2}, "restaurant", "bar")
//	b.Add(coskq.Point{X: 3, Y: 1}, "museum")
//	b.Add(coskq.Point{X: 2, Y: 2}, "shopping")
//	eng := coskq.NewEngine(b.Build(), 0)
//
//	q := coskq.Query{Loc: coskq.Point{X: 0, Y: 0}, Keywords: coskq.Keywords(eng, "restaurant", "museum")}
//	res, err := eng.Solve(q, coskq.MaxSum, coskq.OwnerExact)
//
// The returned Result holds the chosen object ids, the achieved cost and
// search statistics. See the examples directory for complete programs.
package coskq

import (
	"io"

	"coskq/internal/core"
	"coskq/internal/datagen"
	"coskq/internal/dataset"
	"coskq/internal/geo"
	"coskq/internal/invindex"
	"coskq/internal/kwds"
	"coskq/internal/shard"
)

// Point is a planar location (Euclidean distances, as in the paper).
type Point = geo.Point

// Rect is an axis-aligned rectangle (e.g. a dataset MBR).
type Rect = geo.Rect

// KeywordID identifies an interned keyword within one dataset.
type KeywordID = kwds.ID

// KeywordSet is a sorted, duplicate-free set of keyword ids.
type KeywordSet = kwds.Set

// NewKeywordSet builds a KeywordSet from ids (sorting and de-duplicating).
func NewKeywordSet(ids ...KeywordID) KeywordSet { return kwds.NewSet(ids...) }

// ObjectID identifies an object within one dataset.
type ObjectID = dataset.ObjectID

// Object is a geo-textual object: a location plus a keyword set.
type Object = dataset.Object

// Dataset is an immutable collection of geo-textual objects.
type Dataset = dataset.Dataset

// DatasetStats summarizes a dataset (object count, vocabulary, keyword
// counts), matching the paper's dataset statistics table.
type DatasetStats = dataset.Stats

// Builder accumulates objects into a Dataset.
type Builder = dataset.Builder

// NewBuilder returns a Builder for a dataset with the given name.
func NewBuilder(name string) *Builder { return dataset.NewBuilder(name) }

// LoadDataset reads a dataset from a file written by Dataset.Save.
func LoadDataset(path string) (*Dataset, error) { return dataset.Load(path) }

// Query is a collective spatial keyword query.
type Query = core.Query

// Result is the answer to one query execution.
type Result = core.Result

// SearchStats carries per-execution search-effort counters.
type SearchStats = core.Stats

// CostKind selects the cost function.
type CostKind = core.CostKind

// Cost functions. MaxSum and Dia are the paper's; Sum and MinMax are the
// Cao et al. costs supported as extensions.
const (
	MaxSum = core.MaxSum
	Dia    = core.Dia
	Sum    = core.Sum
	MinMax = core.MinMax
	SumMax = core.SumMax
)

// Method selects the algorithm.
type Method = core.Method

// Algorithms. OwnerExact/OwnerAppro are the paper's distance owner-driven
// algorithms; CaoExact/CaoAppro1/CaoAppro2 are the SIGMOD 2011 baselines;
// Brute is the exhaustive testing oracle; GreedySum serves the Sum cost.
const (
	OwnerExact = core.OwnerExact
	OwnerAppro = core.OwnerAppro
	CaoExact   = core.CaoExact
	CaoAppro1  = core.CaoAppro1
	CaoAppro2  = core.CaoAppro2
	Brute      = core.Brute
	GreedySum  = core.GreedySum
	PairsExact = core.PairsExact
)

// ErrInfeasible is returned when some query keyword appears in no object.
var ErrInfeasible = core.ErrInfeasible

// ErrUnsupported is returned for a cost/method pair with no algorithm.
var ErrUnsupported = core.ErrUnsupported

// ErrBudgetExceeded is returned when NodeBudget trips an exact search
// under the default DegradeFail policy.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// DegradePolicy selects what an interrupted search (budget, deadline,
// cancellation) returns: the error (DegradeFail, the zero value), the
// best feasible set found so far (DegradeIncumbent), or — when no
// incumbent exists either — a fresh approximation (DegradeFallbackAppro).
// Degraded answers carry Result.Degraded and Stats.DegradeReason.
type DegradePolicy = core.DegradePolicy

// Degrade policies for Engine.Degrade.
const (
	DegradeFail          = core.DegradeFail
	DegradeIncumbent     = core.DegradeIncumbent
	DegradeFallbackAppro = core.DegradeFallbackAppro
)

// ParseDegradePolicy maps a flag spelling ("fail", "incumbent",
// "fallback"/"appro") to its policy.
func ParseDegradePolicy(s string) (DegradePolicy, bool) { return core.ParseDegradePolicy(s) }

// Engine owns a dataset and its indexes (IR-tree and inverted index) and
// answers queries. Build once per dataset; safe for concurrent queries.
type Engine = core.Engine

// NewEngine indexes ds with the given IR-tree fanout (0 for the default).
func NewEngine(ds *Dataset, fanout int) *Engine { return core.NewEngine(ds, fanout) }

// Keywords resolves keyword strings against an engine's dataset
// vocabulary, silently dropping unknown words (an unknown word makes the
// query infeasible anyway; callers that care should use LookupKeyword).
func Keywords(e *Engine, words ...string) KeywordSet {
	var ids []KeywordID
	for _, w := range words {
		if id, ok := e.DS.Vocab.Lookup(w); ok {
			ids = append(ids, id)
		}
	}
	return kwds.NewSet(ids...)
}

// LookupKeyword resolves one keyword string against a dataset vocabulary.
func LookupKeyword(ds *Dataset, word string) (KeywordID, bool) {
	return ds.Vocab.Lookup(word)
}

// GenConfig parameterizes synthetic dataset generation.
type GenConfig = datagen.Config

// Generate builds a synthetic dataset (deterministic in the seed).
func Generate(cfg GenConfig) *Dataset { return datagen.Generate(cfg) }

// ProfileHotel / ProfileGN / ProfileWeb return generator configurations
// calibrated to the published statistics of the paper's three datasets.
// The scale factor (for GN and Web) shrinks the object count and
// vocabulary proportionally for laptop-scale runs.
func ProfileHotel(seed int64) GenConfig              { return datagen.ProfileHotel(seed) }
func ProfileGN(seed int64, scale float64) GenConfig  { return datagen.ProfileGN(seed, scale) }
func ProfileWeb(seed int64, scale float64) GenConfig { return datagen.ProfileWeb(seed, scale) }

// AugmentKeywords raises the dataset's average keywords per object to at
// least targetAvg (the paper's avg |o.ψ| sweep construction).
func AugmentKeywords(ds *Dataset, targetAvg float64, seed int64) *Dataset {
	return datagen.AugmentKeywords(ds, targetAvg, seed)
}

// AugmentToN grows a dataset to n objects by resampling locations and
// documents from the base (the paper's scalability construction).
func AugmentToN(ds *Dataset, n int, seed int64) *Dataset {
	return datagen.AugmentToN(ds, n, seed)
}

// QueryGen draws query workloads the way the paper does.
type QueryGen = datagen.QueryGen

// NewQueryGen prepares a query generator over an engine's dataset using
// the paper's frequency percentile band [loPct, hiPct).
func NewQueryGen(e *Engine, loPct, hiPct float64, seed int64) *QueryGen {
	return datagen.NewQueryGen(e.DS, e.Inv, loPct, hiPct, seed)
}

// InvertedIndex exposes keyword posting lists and frequency ranking.
type InvertedIndex = invindex.Index

// ShardRouter answers queries by distance-bounded scatter-gather over a
// set of spatial shards, mirroring Engine.Solve/SolveCtx: exact methods
// return exactly the single-engine answer, approximations keep their
// proven ratios.
type ShardRouter = shard.Router

// ShardPartitioner splits a dataset into spatial shards.
type ShardPartitioner = shard.Partitioner

// GridPartitioner returns the uniform-grid sharding strategy.
func GridPartitioner() ShardPartitioner { return shard.Grid() }

// SubtreePartitioner returns the R-tree-top-subtree sharding strategy
// (tighter shard MBRs on skewed data).
func SubtreePartitioner() ShardPartitioner { return shard.Subtree() }

// NewShardedEngine partitions ds into n shards with the given strategy
// and returns a router over per-shard engines (IR-tree fanout 0 for the
// default). The router answers Solve/SolveCtx like an Engine.
func NewShardedEngine(ds *Dataset, n int, part ShardPartitioner, fanout int) (*ShardRouter, error) {
	return shard.NewLocalRouter(ds, n, part, fanout)
}

// LoadCSVDataset reads a dataset from a CSV file with records
// "x,y,word1 word2 ..." (header optional). See also ReadCSVLatLon for
// longitude/latitude data.
func LoadCSVDataset(path string) (*Dataset, error) { return dataset.LoadCSV(path) }

// ReadCSV parses a planar-coordinate CSV dataset ("x,y,words").
func ReadCSV(name string, r io.Reader) (*Dataset, error) { return dataset.ReadCSV(name, r) }

// ReadCSVLatLon parses a "lon,lat,words" CSV dataset, projecting
// coordinates to planar kilometers around the reference latitude.
func ReadCSVLatLon(name string, r io.Reader, refLatDeg float64) (*Dataset, error) {
	return dataset.ReadCSVLatLon(name, r, refLatDeg)
}
